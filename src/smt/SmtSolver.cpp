//===- smt/SmtSolver.cpp - CDCL(T) solver for linear integer arith --------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

using namespace la;
using namespace la::smt;

//===----------------------------------------------------------------------===//
// TheoryBridge: glue between the CDCL core and the simplex
//===----------------------------------------------------------------------===//

class SmtSolver::TheoryBridge : public sat::TheoryClient {
public:
  explicit TheoryBridge(SmtSolver &Owner) : Owner(Owner) {}

  /// Bounds an atom literal imposes on its simplex variable, per polarity.
  struct AtomBounds {
    Simplex::VarId SVar = -1;
    bool TrueIsLower = false;
    DeltaRational TrueVal;
    bool FalseIsLower = true;
    DeltaRational FalseVal;
  };

  void registerAtomVar(sat::Var V, AtomBounds Bounds) {
    if (static_cast<size_t>(V) >= AtomOfVar.size())
      AtomOfVar.resize(V + 1);
    AtomOfVar[V] = std::move(Bounds);
  }

  /// Records that simplex variable \p Slack is defined as \p Def over
  /// structural variables (used by the integer equation check).
  void registerSlackDef(Simplex::VarId Slack,
                        std::vector<std::pair<Simplex::VarId, Rational>> Def) {
    SlackDefs.emplace(Slack, std::move(Def));
  }

  void onAssert(sat::Lit L) override {
    UndoRec Rec;
    sat::Var V = sat::litVar(L);
    if (static_cast<size_t>(V) < AtomOfVar.size() && AtomOfVar[V].SVar >= 0) {
      const AtomBounds &AB = AtomOfVar[V];
      bool Neg = sat::litNegated(L);
      bool IsLower = Neg ? AB.FalseIsLower : AB.TrueIsLower;
      const DeltaRational &Val = Neg ? AB.FalseVal : AB.TrueVal;
      std::optional<Simplex::Conflict> Clash =
          Splx.assertBound(AB.SVar, IsLower, Val, L, Rec.Undo);
      Rec.IsAtom = true;
      if (Clash && !Pending) {
        Pending = conflictClause(*Clash);
        PendingStackSize = Stack.size();
      }
    }
    Stack.push_back(std::move(Rec));
  }

  void onBacktrack(size_t NewSize) override {
    while (Stack.size() > NewSize) {
      if (Stack.back().IsAtom)
        Splx.undoBound(Stack.back().Undo);
      Stack.pop_back();
    }
    if (Pending && Stack.size() <= PendingStackSize)
      Pending.reset();
  }

  CheckResult check(bool Final) override {
    CheckResult R;
    if (Clock.expired() || isCancelled(Owner.Opts.Cancel)) {
      R.Abort = true;
      return R;
    }
    if (Pending) {
      R.Consistent = false;
      R.Conflict = *Pending;
      return R;
    }
    std::optional<Simplex::Conflict> Conf = Splx.check();
    if (Conf) {
      R.Consistent = false;
      R.Conflict = conflictClause(*Conf);
      return R;
    }
    if (!Final)
      return R;
    // Integer-equation (GCD / elimination) check: branch-and-bound alone
    // diverges on LP-feasible but integer-infeasible equation systems such
    // as 2*q1 + 2 = 2*q2 + 1 (which arise from `mod` lowering), because the
    // quotient variables are unbounded. Gather the currently *fixed*
    // equations and run an exact elimination pass first.
    if (std::optional<std::vector<sat::Lit>> Conflict = integerEquationCheck()) {
      R.Consistent = false;
      R.Conflict = std::move(*Conflict);
      return R;
    }
    // Feasibility diving: before any case split, try to round the current
    // fractional vertex into the integer lattice by pinning variables one by
    // one inside the simplex. This terminates immediately on most SAT
    // queries, where plain branch-and-bound tends to drift along unbounded
    // rays of the polyhedron.
    if (diveForIntegerModel())
      return R; // consistent and integral: the caller answers SAT
    // Branch and bound: find an integer variable with a fractional value
    // and split on it (splitting on demand: the new atom simply enters the
    // boolean search space; its two phases are the two branches).
    for (const Term *VarTerm : Owner.IntVars) {
      Simplex::VarId SV = Owner.VarOfTerm.at(VarTerm);
      const DeltaRational &Val = Splx.value(SV);
      assert(Val.delta().isZero() &&
             "integer-tightened bounds must keep values delta-free");
      if (Val.real().isInteger())
        continue;
      if (SplitsDone >= Owner.Opts.MaxBranchSplits) {
        R.Abort = true;
        return R;
      }
      ++SplitsDone;
      if (std::getenv("LA_TRACE_SPLITS") && SplitsDone < 60)
        fprintf(stderr, "[smt] split #%lld on %s at %s\n",
                (long long)SplitsDone, VarTerm->name().c_str(),
                Val.real().toString().c_str());
      LinearAtom Split;
      Split.Expr.addVar(VarTerm, Rational(1));
      Split.Expr.addConstant(Rational(-Val.real().floor()));
      Split.Rel = LinRel::Le; // x <= floor(v); negation gives x >= floor+1
      sat::Lit A = Owner.registerAtom(Split);
      // Branch toward the current relaxation point first (x <= floor(v));
      // defaulting to the far branch walks unbounded variables away from
      // the feasible lattice and diverges.
      Owner.Sat->setPreferredPolarity(sat::litVar(A), sat::litNegated(A));
      R.Lemmas.push_back({A, sat::negate(A)});
      return R;
    }
    return R;
  }

  Simplex Splx;
  int64_t SplitsDone = 0; ///< branch-and-bound splits in the current check
  Deadline Clock;

  void startClock(double Seconds) { Clock = Deadline(Seconds); }

#ifndef NDEBUG
  /// Root-level justification audit, run at scope exits: probe bounds
  /// (Reason < 0) must all have been retracted, and every installed atom
  /// bound must be justified by a reason literal that is still true.
  void checkBoundJustifications() const {
    for (Simplex::VarId V = 0; V < Splx.numVars(); ++V) {
      for (bool IsLower : {true, false}) {
        const Simplex::Bound &B =
            IsLower ? Splx.lowerBound(V) : Splx.upperBound(V);
        if (!B.Present)
          continue;
        assert(B.Reason >= 0 && "probe bound leaked past a scope exit");
        assert(Owner.Sat->valueLit(static_cast<sat::Lit>(B.Reason)) ==
                   sat::LBool::True &&
               "installed bound justified by a retracted literal");
      }
    }
  }
#endif

private:
  /// Retracts a probe-bound segment in LIFO order and restores feasibility.
  void retractProbes(std::vector<Simplex::BoundUndo> &Probe, size_t Mark) {
    while (Probe.size() > Mark) {
      Splx.undoBound(Probe.back());
      Probe.pop_back();
    }
    [[maybe_unused]] std::optional<Simplex::Conflict> C = Splx.check();
    assert(!C && "retracting probe bounds must restore feasibility");
  }

  /// Pins `Value <= SV <= Value` as probe bounds; on infeasibility the pair
  /// is retracted and false returned.
  bool pinTo(std::vector<Simplex::BoundUndo> &Probe, Simplex::VarId SV,
             const Rational &Value) {
    size_t Mark = Probe.size();
    Simplex::BoundUndo U1, U2;
    if (Splx.assertBound(SV, true, DeltaRational(Value), -1, U1))
      return false;
    Probe.push_back(U1);
    if (Splx.assertBound(SV, false, DeltaRational(Value), -1, U2)) {
      retractProbes(Probe, Mark);
      return false;
    }
    Probe.push_back(U2);
    if (!Splx.check())
      return true;
    retractProbes(Probe, Mark);
    return false;
  }

  /// Greedy rounding sweep: repeatedly pins some fractional variable to its
  /// floor or ceiling. Returns true when every integer variable is integral.
  bool diveLoop(std::vector<Simplex::BoundUndo> &Probe) {
    size_t Budget = 4 * Owner.IntVars.size() + 4;
    for (size_t Round = 0; Round < Budget; ++Round) {
      const Term *Fractional = nullptr;
      for (const Term *VarTerm : Owner.IntVars) {
        if (!Splx.value(Owner.VarOfTerm.at(VarTerm)).real().isInteger()) {
          Fractional = VarTerm;
          break;
        }
      }
      if (!Fractional)
        return true;
      Simplex::VarId SV = Owner.VarOfTerm.at(Fractional);
      Rational Val = Splx.value(SV).real();
      if (!pinTo(Probe, SV, Rational(Val.floor())) &&
          !pinTo(Probe, SV, Rational(Val.ceil())))
        return false;
    }
    for (const Term *VarTerm : Owner.IntVars)
      if (!Splx.value(Owner.VarOfTerm.at(VarTerm)).real().isInteger())
        return false;
    return true;
  }

  /// Tries to move the simplex assignment onto the integer lattice. First
  /// greedy rounding inside successively larger boxes around the origin
  /// (bounded polytopes make rounding robust and prevent branch-and-bound
  /// from drifting along unbounded rays), then an unboxed dive. All probe
  /// bounds are retracted before returning; a successful dive leaves the
  /// feasible integral assignment in place for model extraction.
  bool diveForIntegerModel() {
    std::vector<Simplex::BoundUndo> Probe;
    for (int64_t Box : {16, 256, 4096}) {
      size_t BoxMark = Probe.size();
      bool BoxFeasible = true;
      for (const Term *VarTerm : Owner.IntVars) {
        Simplex::VarId SV = Owner.VarOfTerm.at(VarTerm);
        Simplex::BoundUndo U1, U2;
        if (Splx.assertBound(SV, true, DeltaRational(Rational(-Box)), -1,
                             U1)) {
          BoxFeasible = false;
          break;
        }
        Probe.push_back(U1);
        if (Splx.assertBound(SV, false, DeltaRational(Rational(Box)), -1,
                             U2)) {
          BoxFeasible = false;
          break;
        }
        Probe.push_back(U2);
      }
      if (BoxFeasible && Splx.check())
        BoxFeasible = false; // no rational point in this box
      if (BoxFeasible && diveLoop(Probe)) {
        retractProbes(Probe, 0);
        return true; // integral assignment found (and kept)
      }
      retractProbes(Probe, BoxMark);
    }
    // Unboxed last attempt.
    if (diveLoop(Probe)) {
      retractProbes(Probe, 0);
      return true;
    }
    retractProbes(Probe, 0);
    return false;
  }

  /// One integer linear equation `sum Coeffs * var + Const = 0`.
  struct IntEquation {
    std::map<Simplex::VarId, BigInt> Coeffs;
    BigInt Const;
  };

  /// Collects equations from variables whose bounds are currently pinned to
  /// a single integer value and refutes them by exact elimination when the
  /// system has no integer solution; additionally enumerates the values of
  /// up to two small-range variables (e.g. `mod` remainders) so congruence
  /// conflicts like `r in [1,2] with r = 3k` are caught. Returns the
  /// conflict clause (negated reasons of every participating bound).
  std::optional<std::vector<sat::Lit>> integerEquationCheck() {
    std::vector<IntEquation> Equations;
    std::set<sat::Lit> Reasons;
    struct RangeVar {
      Simplex::VarId Var;
      BigInt Lo;
      BigInt Hi;
    };
    std::vector<RangeVar> RangeVars;
    for (Simplex::VarId V = 0; V < Splx.numVars(); ++V) {
      const Simplex::Bound &Lo = Splx.lowerBound(V);
      const Simplex::Bound &Hi = Splx.upperBound(V);
      if (!Lo.Present || !Hi.Present)
        continue;
      assert(Lo.Value.delta().isZero() && Lo.Value.real().isInteger() &&
             "integer-tightened bounds expected");
      if (Lo.Value != Hi.Value) {
        // A narrow interval on a structural variable is worth enumerating.
        BigInt Width =
            Hi.Value.real().numerator() - Lo.Value.real().numerator();
        if (!SlackDefs.count(V) && Width <= BigInt(3)) {
          RangeVars.push_back(RangeVar{V, Lo.Value.real().numerator(),
                                       Hi.Value.real().numerator()});
          Reasons.insert(static_cast<sat::Lit>(Lo.Reason));
          Reasons.insert(static_cast<sat::Lit>(Hi.Reason));
        }
        continue;
      }
      IntEquation Eq;
      Eq.Const = -Lo.Value.real().numerator();
      auto DefIt = SlackDefs.find(V);
      if (DefIt == SlackDefs.end()) {
        Eq.Coeffs[V] = BigInt(1);
      } else {
        for (const auto &[W, C] : DefIt->second) {
          assert(C.isInteger() && "slack definitions have integer coeffs");
          Eq.Coeffs[W] = C.numerator();
        }
      }
      Reasons.insert(static_cast<sat::Lit>(Lo.Reason));
      Reasons.insert(static_cast<sat::Lit>(Hi.Reason));
      Equations.push_back(std::move(Eq));
    }
    if (Equations.empty())
      return std::nullopt;

    if (!eliminationConflict(Equations)) {
      // Case-enumerate small-range variables, narrowest first, while the
      // product of range widths stays tractable.
      if (RangeVars.empty())
        return std::nullopt;
      std::sort(RangeVars.begin(), RangeVars.end(),
                [](const RangeVar &A, const RangeVar &B) {
                  return A.Hi - A.Lo < B.Hi - B.Lo;
                });
      uint64_t Product = 1;
      size_t Keep = 0;
      for (const RangeVar &R : RangeVars) {
        // Guarded conversion: a range wider than int64 (or than the case
        // budget) simply stops the enumeration instead of dereferencing an
        // empty optional / wrapping the product.
        std::optional<int64_t> WidthMinus1 = (R.Hi - R.Lo).toInt64();
        if (!WidthMinus1 || *WidthMinus1 < 0 || *WidthMinus1 >= 16)
          break;
        uint64_t Width = static_cast<uint64_t>(*WidthMinus1) + 1;
        if (Product * Width > 16)
          break;
        Product *= Width;
        ++Keep;
      }
      RangeVars.resize(Keep);
      if (RangeVars.empty())
        return std::nullopt;
      // Every combination must conflict for a refutation.
      std::vector<BigInt> Values;
      std::function<bool(size_t)> AllConflict = [&](size_t I) -> bool {
        if (I == RangeVars.size()) {
          std::vector<IntEquation> WithCases = Equations;
          for (size_t J = 0; J < RangeVars.size(); ++J) {
            IntEquation Eq;
            Eq.Coeffs[RangeVars[J].Var] = BigInt(1);
            Eq.Const = BigInt(0) - Values[J];
            WithCases.push_back(std::move(Eq));
          }
          return eliminationConflict(WithCases);
        }
        for (BigInt V = RangeVars[I].Lo; V <= RangeVars[I].Hi;
             V += BigInt(1)) {
          Values.push_back(V);
          bool Ok = AllConflict(I + 1);
          Values.pop_back();
          if (!Ok)
            return false;
        }
        return true;
      };
      if (!AllConflict(0))
        return std::nullopt;
    }

    std::vector<sat::Lit> Clause;
    for (sat::Lit L : Reasons)
      Clause.push_back(sat::negate(L));
    return Clause;
  }

  /// Exact elimination on integer equations; true iff provably infeasible.
  static bool eliminationConflict(std::vector<IntEquation> Equations) {
    bool Conflict = false;
    for (size_t Round = 0; Round < 4 * Equations.size() + 4 && !Conflict;
         ++Round) {
      // Normalise and detect ground conflicts.
      for (size_t I = 0; I < Equations.size();) {
        IntEquation &Eq = Equations[I];
        for (auto It = Eq.Coeffs.begin(); It != Eq.Coeffs.end();)
          It = It->second.isZero() ? Eq.Coeffs.erase(It) : std::next(It);
        if (Eq.Coeffs.empty()) {
          if (!Eq.Const.isZero()) {
            Conflict = true;
            break;
          }
          Equations.erase(Equations.begin() + I);
          continue;
        }
        BigInt G;
        for (const auto &[W, C] : Eq.Coeffs)
          G = BigInt::gcd(G, C);
        if (!(Eq.Const % G).isZero()) {
          Conflict = true;
          break;
        }
        if (!G.isOne()) {
          for (auto &[W, C] : Eq.Coeffs) {
            (void)W;
            C = C / G;
          }
          Eq.Const = Eq.Const / G;
        }
        ++I;
      }
      if (Conflict || Equations.empty())
        break;
      // Find a unit coefficient to substitute away.
      size_t EqIdx = Equations.size();
      Simplex::VarId Var = -1;
      for (size_t I = 0; I < Equations.size() && EqIdx == Equations.size();
           ++I)
        for (const auto &[W, C] : Equations[I].Coeffs)
          if (C.abs().isOne()) {
            EqIdx = I;
            Var = W;
            break;
          }
      if (EqIdx == Equations.size())
        break; // no unit pivot: give up (sound, incomplete)
      // Var = -A * (Const + sum of the other terms), with A = +-1.
      IntEquation Pivot = Equations[EqIdx];
      Equations.erase(Equations.begin() + EqIdx);
      BigInt A = Pivot.Coeffs.at(Var);
      Pivot.Coeffs.erase(Var);
      for (IntEquation &Eq : Equations) {
        auto It = Eq.Coeffs.find(Var);
        if (It == Eq.Coeffs.end())
          continue;
        BigInt B = It->second;
        Eq.Coeffs.erase(It);
        BigInt Factor = BigInt(0) - B * A; // B * (-A)
        for (const auto &[W, C] : Pivot.Coeffs)
          Eq.Coeffs[W] += Factor * C;
        Eq.Const += Factor * Pivot.Const;
      }
    }
    return Conflict;
  }

  std::vector<sat::Lit> conflictClause(const Simplex::Conflict &Conf) const {
    std::set<sat::Lit> Lits;
    for (const auto &[Reason, Coeff] : Conf.Reasons) {
      (void)Coeff;
      Lits.insert(sat::negate(static_cast<sat::Lit>(Reason)));
    }
    return std::vector<sat::Lit>(Lits.begin(), Lits.end());
  }

  struct UndoRec {
    Simplex::BoundUndo Undo;
    bool IsAtom = false;
  };

  SmtSolver &Owner;
  std::vector<AtomBounds> AtomOfVar; ///< indexed by SAT variable
  std::unordered_map<Simplex::VarId,
                     std::vector<std::pair<Simplex::VarId, Rational>>>
      SlackDefs;
  std::vector<UndoRec> Stack;        ///< parallel to the SAT trail
  std::optional<std::vector<sat::Lit>> Pending;
  size_t PendingStackSize = 0;
};

//===----------------------------------------------------------------------===//
// SmtSolver
//===----------------------------------------------------------------------===//

SmtSolver::SmtSolver(TermManager &TM, Options Opts) : TM(TM), Opts(Opts) {
  Bridge = std::make_unique<TheoryBridge>(*this);
  Sat = std::make_unique<sat::SatSolver>(Bridge.get());
}

SmtSolver::~SmtSolver() = default;

void SmtSolver::assertFormula(const Term *F) {
  assert(F->sort() == Sort::Bool && "asserting a non-Bool term");
  assert(!TermManager::containsPredApp(F) &&
         "verification formulas must be predicate-free");
  // Register every Int variable so the model covers it even when it ends up
  // unconstrained.
  for (const Term *V : TM.collectVars(F))
    if (V->sort() == Sort::Int)
      (void)simplexVarFor(V);
  // Encoding emits Tseitin clauses, which the CDCL core only accepts at the
  // root level; a previous check may have left the trail deep.
  Sat->backtrackToRoot();
  const Term *Lowered = lowerModAndEq(F);
  // Mod lowering introduces fresh quotient/remainder variables with
  // definitional constraints; those are valid regardless of the scope the
  // triggering assertion lives in, so they are always asserted permanently.
  while (SideCursor < SideConstraints.size()) {
    const Term *Side = lowerModAndEq(SideConstraints[SideCursor++]);
    if (!Sat->addClause({encode(Side)}))
      RootUnsat = true;
  }
  sat::Lit Gate = encode(Lowered);
  if (ScopeMarks.empty()) {
    if (!Sat->addClause({Gate}))
      RootUnsat = true;
  } else {
    Assumptions.push_back(Gate);
  }
}

void SmtSolver::push() {
  ++ScopePushes;
  ScopeMarks.push_back(Assumptions.size());
}

void SmtSolver::pop() {
  assert(!ScopeMarks.empty() && "pop without a matching push");
  ++ScopePops;
  // Backtracking the CDCL trail releases every theory bound asserted during
  // the last check through onBacktrack -> undoBound; the tableau rows stay.
  Sat->backtrackToRoot();
  Assumptions.resize(ScopeMarks.back());
  ScopeMarks.pop_back();
#ifndef NDEBUG
  // Scope exit is the designated point for the full structural scan of the
  // tableau plus the bound-justification check (every bound still installed
  // must be justified by a literal that is still true at the root).
  Bridge->Splx.checkInvariants();
  Bridge->checkBoundJustifications();
#endif
}

Simplex::VarId SmtSolver::simplexVarFor(const Term *Var) {
  auto It = VarOfTerm.find(Var);
  if (It != VarOfTerm.end())
    return It->second;
  Simplex::VarId SV = Bridge->Splx.addVar();
  VarOfTerm.emplace(Var, SV);
  if (Var->sort() == Sort::Int)
    IntVars.push_back(Var);
  return SV;
}

const Term *SmtSolver::lowerModAndEq(const Term *F) {
  switch (F->kind()) {
  case TermKind::IntConst:
  case TermKind::BoolConst:
  case TermKind::Var:
    return F;
  case TermKind::Mod: {
    const Term *Inner = lowerModAndEq(F->operand(0));
    const Term *Lowered = TM.mkMod(Inner, F->value().numerator());
    if (Lowered->kind() != TermKind::Mod)
      return Lowered; // constant-folded
    auto It = ModCache.find(Lowered);
    if (It != ModCache.end())
      return It->second;
    const Term *R = TM.mkFreshVar("mod");
    const Term *Q = TM.mkFreshVar("div");
    const BigInt &K = F->value().numerator();
    // Inner = K*Q + R  with  0 <= R < K.
    SideConstraints.push_back(
        TM.mkEq(Inner, TM.mkAdd(TM.mkMul(Rational(K), Q), R)));
    SideConstraints.push_back(TM.mkLe(TM.mkIntConst(0), R));
    SideConstraints.push_back(
        TM.mkLe(R, TM.mkIntConst(Rational(K) - Rational(1))));
    ModCache.emplace(Lowered, R);
    return R;
  }
  case TermKind::Add: {
    std::vector<const Term *> Ops;
    Ops.reserve(F->numOperands());
    for (const Term *Op : F->operands())
      Ops.push_back(lowerModAndEq(Op));
    return TM.mkAdd(std::move(Ops));
  }
  case TermKind::Mul:
    return TM.mkMul(F->value(), lowerModAndEq(F->operand(0)));
  case TermKind::Le:
    return TM.mkLe(lowerModAndEq(F->operand(0)), lowerModAndEq(F->operand(1)));
  case TermKind::Lt:
    return TM.mkLt(lowerModAndEq(F->operand(0)), lowerModAndEq(F->operand(1)));
  case TermKind::Eq: {
    const Term *L = lowerModAndEq(F->operand(0));
    const Term *R = lowerModAndEq(F->operand(1));
    return TM.mkAnd(TM.mkLe(L, R), TM.mkLe(R, L));
  }
  case TermKind::Not:
    return TM.mkNot(lowerModAndEq(F->operand(0)));
  case TermKind::And: {
    std::vector<const Term *> Ops;
    for (const Term *Op : F->operands())
      Ops.push_back(lowerModAndEq(Op));
    return TM.mkAnd(std::move(Ops));
  }
  case TermKind::Or: {
    std::vector<const Term *> Ops;
    for (const Term *Op : F->operands())
      Ops.push_back(lowerModAndEq(Op));
    return TM.mkOr(std::move(Ops));
  }
  case TermKind::PredApp:
    assert(false && "predicate application in a verification formula");
    return F;
  }
  assert(false && "unhandled term kind");
  return F;
}

sat::Lit SmtSolver::registerAtom(const LinearAtom &AtomIn) {
  assert(AtomIn.Rel != LinRel::Eq && "Eq atoms are split before registration");
  LinearAtom Atom = AtomIn;
  Atom.Expr.normalizeIntegral();

  // Constant atom: decide truth immediately and return a constant literal.
  if (Atom.Expr.isConstant()) {
    bool Truth = Atom.Rel == LinRel::Le ? Atom.Expr.constant().signum() <= 0
                                        : Atom.Expr.constant().signum() < 0;
    return encode(TM.mkBool(Truth));
  }

  // Integer tightening: with integral coefficients and integer variables,
  //   E < 0  <=>  E <= -1, so only non-strict "<= K" bounds remain.
  const Rational &B = Atom.Expr.constant();
  assert(B.isInteger() && "normalised atom with fractional constant");
  Rational K = Atom.Rel == LinRel::Le ? -B : -B - Rational(1);

  const auto &Coeffs = Atom.Expr.coefficients();
  TheoryBridge::AtomBounds Bounds;
  std::string Key;
  if (Coeffs.size() == 1) {
    // c*x <= K: bound the variable directly (exact integer division).
    const auto &[VarTerm, C] = *Coeffs.begin();
    Simplex::VarId SV = simplexVarFor(VarTerm);
    Bounds.SVar = SV;
    if (C.signum() > 0) {
      Rational Floor((K / C).floor());
      Bounds.TrueIsLower = false;
      Bounds.TrueVal = DeltaRational(Floor);
      Bounds.FalseIsLower = true;
      Bounds.FalseVal = DeltaRational(Floor + Rational(1));
    } else {
      Rational Ceil((K / C).ceil());
      Bounds.TrueIsLower = true;
      Bounds.TrueVal = DeltaRational(Ceil);
      Bounds.FalseIsLower = false;
      Bounds.FalseVal = DeltaRational(Ceil - Rational(1));
    }
  } else {
    // Multi-variable atom: introduce (or reuse) a slack for the linear part.
    // GCD tightening: when all coefficients share a factor g, the slack for
    // coeffs/g is integral and `g*s <= K` tightens to `s <= floor(K/g)`.
    // This refutes systems like 2x - 2y = 1 without any branching.
    BigInt G;
    for (const auto &[VarTerm, C] : Coeffs) {
      (void)VarTerm;
      assert(C.isInteger() && "normalised atom with fractional coefficient");
      G = BigInt::gcd(G, C.numerator());
    }
    Rational GR((G.isZero() ? BigInt(1) : G));
    // Canonicalise the slack's sign (first coefficient positive) so that the
    // two directions of an equality bound the *same* slack variable; the
    // integer-equation check depends on seeing lower == upper on one var.
    bool Flip = Coeffs.begin()->second.isNegative();
    if (Flip)
      GR = -GR;
    std::string SlackKey;
    std::vector<std::pair<Simplex::VarId, Rational>> Def;
    for (const auto &[VarTerm, C] : Coeffs) {
      Simplex::VarId SV = simplexVarFor(VarTerm);
      Rational Reduced = C / GR;
      Def.emplace_back(SV, Reduced);
      SlackKey += std::to_string(SV) + "*" + Reduced.toString() + " ";
    }
    auto [SlackIt, Inserted] = SlackCache.emplace(SlackKey, -1);
    if (Inserted) {
      SlackIt->second = Bridge->Splx.addDefinedVar(Def);
      Bridge->registerSlackDef(SlackIt->second, Def);
    }
    Bounds.SVar = SlackIt->second;
    if (Flip) {
      // sum coeff * x <= K  <=>  slack >= ceil(K / GR) with GR < 0.
      Rational Tight((K / GR).ceil());
      Bounds.TrueIsLower = true;
      Bounds.TrueVal = DeltaRational(Tight);
      Bounds.FalseIsLower = false;
      Bounds.FalseVal = DeltaRational(Tight - Rational(1));
    } else {
      Rational Tight((K / GR).floor());
      Bounds.TrueIsLower = false;
      Bounds.TrueVal = DeltaRational(Tight);
      Bounds.FalseIsLower = true;
      Bounds.FalseVal = DeltaRational(Tight + Rational(1));
    }
  }

  Key = std::to_string(Bounds.SVar) + (Bounds.TrueIsLower ? "L" : "U") +
        Bounds.TrueVal.toString();
  auto [It, Inserted] = AtomCache.emplace(Key, 0);
  if (!Inserted)
    return It->second;
  sat::Var V = Sat->newVar();
  Bridge->registerAtomVar(V, std::move(Bounds));
  It->second = sat::mkLit(V);
  return It->second;
}

sat::Lit SmtSolver::atomLiteral(const Term *AtomTerm) {
  std::optional<LinearAtom> Atom = LinearAtom::fromTerm(AtomTerm);
  assert(Atom.has_value() && "non-linear atom reached the encoder");
  return registerAtom(*Atom);
}

sat::Lit SmtSolver::encode(const Term *F) {
  auto Cached = EncodeCache.find(F);
  if (Cached != EncodeCache.end())
    return Cached->second;
  sat::Lit Result;
  switch (F->kind()) {
  case TermKind::BoolConst: {
    // A variable forced to the constant's value.
    sat::Var V = Sat->newVar();
    Sat->addClause({sat::mkLit(V, !F->boolValue())});
    Result = sat::mkLit(V);
    break;
  }
  case TermKind::Var: {
    assert(F->sort() == Sort::Bool && "Int variable in boolean position");
    sat::Var V = Sat->newVar();
    Result = sat::mkLit(V);
    break;
  }
  case TermKind::Le:
  case TermKind::Lt:
    Result = atomLiteral(F);
    break;
  case TermKind::Not:
    Result = sat::negate(encode(F->operand(0)));
    break;
  case TermKind::And: {
    sat::Var G = Sat->newVar();
    std::vector<sat::Lit> Back{sat::mkLit(G)};
    for (const Term *Op : F->operands()) {
      sat::Lit OpLit = encode(Op);
      Sat->addClause({sat::mkLit(G, true), OpLit});
      Back.push_back(sat::negate(OpLit));
    }
    Sat->addClause(std::move(Back));
    Result = sat::mkLit(G);
    break;
  }
  case TermKind::Or: {
    sat::Var G = Sat->newVar();
    std::vector<sat::Lit> Fwd{sat::mkLit(G, true)};
    for (const Term *Op : F->operands()) {
      sat::Lit OpLit = encode(Op);
      Sat->addClause({sat::mkLit(G), sat::negate(OpLit)});
      Fwd.push_back(OpLit);
    }
    Sat->addClause(std::move(Fwd));
    Result = sat::mkLit(G);
    break;
  }
  default:
    assert(false && "unexpected term kind in boolean encoding");
    Result = 0;
    break;
  }
  EncodeCache.emplace(F, Result);
  return Result;
}

SmtResult SmtSolver::check() {
  ++NumChecks;
  Model.clear();
  if (RootUnsat || Sat->inconsistent())
    return SmtResult::Unsat;
  if (isCancelled(Opts.Cancel))
    return SmtResult::Unknown;
  Bridge->startClock(Opts.TimeoutSeconds);
  Bridge->SplitsDone = 0; // the split budget is per check
  Sat->backtrackToRoot();

  // Clauses appended from here on are learnt (Tseitin clauses only appear
  // inside assertFormula); the mark delimits what the carry cap may shed.
  size_t ClauseMark = Sat->numClauses();
  sat::SatResult R = Sat->solveWithAssumptions(Assumptions, Opts.MaxConflicts);
  CumulativeSplits += static_cast<uint64_t>(Bridge->SplitsDone);

  SmtResult Out = SmtResult::Unknown;
  switch (R) {
  case sat::SatResult::Unsat:
    Out = SmtResult::Unsat;
    break;
  case sat::SatResult::Unknown:
    Out = SmtResult::Unknown;
    break;
  case sat::SatResult::Sat: {
    // Build the model before any backtracking disturbs the assignment.
    for (const Term *V : IntVars) {
      const DeltaRational &Val = Bridge->Splx.value(VarOfTerm.at(V));
      assert(Val.delta().isZero() && Val.real().isInteger() &&
             "integer model value expected");
      Model.emplace(V, Val.real());
    }
    for (const auto &[T, L] : EncodeCache)
      if (T->kind() == TermKind::Var && T->sort() == Sort::Bool)
        Model.emplace(T,
                      Rational(Sat->valueLit(L) == sat::LBool::True ? 1 : 0));
    Out = SmtResult::Sat;
    break;
  }
  }

  // Learnt clauses are resolvents of permanent clauses only (assumptions
  // enter the search as decisions, never as clauses), so keeping them is
  // sound after any pop; the cap just bounds memory on long solver reuse.
  if (Sat->numClauses() > ClauseMark + Opts.LearntCarryCap) {
    Sat->backtrackToRoot();
    LearntDropped += Sat->numClauses() - ClauseMark;
    Sat->shrinkLearntSuffix(ClauseMark);
  }
  return Out;
}

const std::unordered_map<const Term *, Rational> &SmtSolver::model() const {
  return Model;
}

Rational SmtSolver::evalInModel(const Term *T) const {
  // Tolerate variables absent from the model (unconstrained): default 0.
  std::unordered_map<const Term *, Rational> Extended = Model;
  std::vector<const Term *> Stack{T};
  while (!Stack.empty()) {
    const Term *Node = Stack.back();
    Stack.pop_back();
    if (Node->kind() == TermKind::Var && !Extended.count(Node))
      Extended.emplace(Node, Rational(0));
    for (const Term *Op : Node->operands())
      Stack.push_back(Op);
  }
  return evalTerm(T, Extended);
}

SmtSolver::Stats SmtSolver::stats() const {
  Stats S;
  S.NumAtoms = AtomCache.size();
  S.NumBranchSplits = CumulativeSplits;
  S.Checks = NumChecks;
  S.ScopePushes = ScopePushes;
  S.ScopePops = ScopePops;
  S.LearntDropped = LearntDropped;
  S.Sat = Sat->stats();
  S.SimplexStats = Bridge->Splx.stats();
  return S;
}

//===----------------------------------------------------------------------===//
// Conjunction checking with Farkas certificates
//===----------------------------------------------------------------------===//

ConjunctionResult
la::smt::checkLinearConjunction(const std::vector<LinearAtom> &Atoms) {
  ConjunctionResult Result;
  Result.FarkasCoeffs.assign(Atoms.size(), Rational(0));

  Simplex Splx;
  std::map<const Term *, Simplex::VarId, TermIdLess> VarIds;
  auto VarFor = [&](const Term *V) {
    auto It = VarIds.find(V);
    if (It != VarIds.end())
      return It->second;
    Simplex::VarId SV = Splx.addVar();
    VarIds.emplace(V, SV);
    return SV;
  };

  std::optional<Simplex::Conflict> Conflict;
  std::vector<Simplex::BoundUndo> Undos; // kept alive; never undone
  for (size_t I = 0; I < Atoms.size() && !Conflict; ++I) {
    const LinearAtom &Atom = Atoms[I];
    // Constant atoms decide themselves. (Reasons are encoded as 2*index for
    // "Expr <= 0" usage and 2*index+1 for the ">=" direction of equalities,
    // so certificates carry signed coefficients.)
    if (Atom.Expr.isConstant()) {
      int Sign = Atom.Expr.constant().signum();
      bool Holds = Atom.Rel == LinRel::Le   ? Sign <= 0
                   : Atom.Rel == LinRel::Lt ? Sign < 0
                                            : Sign == 0;
      if (!Holds) {
        int Dir = (Atom.Rel == LinRel::Eq && Sign < 0) ? 1 : 0;
        Conflict =
            Simplex::Conflict{{{static_cast<int>(2 * I + Dir), Rational(1)}}};
        break;
      }
      continue;
    }
    // Slack for the linear part; bound by the (negated) constant.
    std::vector<std::pair<Simplex::VarId, Rational>> Def;
    for (const auto &[V, C] : Atom.Expr.coefficients())
      Def.emplace_back(VarFor(V), C);
    Simplex::VarId S = Splx.addDefinedVar(Def);
    Rational MinusB = -Atom.Expr.constant();
    auto Assert = [&](bool IsLower, const DeltaRational &Val) {
      Simplex::BoundUndo Undo;
      // Upper bounds witness "Expr <= 0" (direction 0); lower bounds
      // witness "Expr >= 0" (direction 1, negative contribution).
      int Reason = static_cast<int>(2 * I + (IsLower ? 1 : 0));
      std::optional<Simplex::Conflict> C =
          Splx.assertBound(S, IsLower, Val, Reason, Undo);
      Undos.push_back(Undo);
      if (C && !Conflict)
        Conflict = C;
    };
    switch (Atom.Rel) {
    case LinRel::Le:
      Assert(false, DeltaRational(MinusB));
      break;
    case LinRel::Lt:
      Assert(false, DeltaRational(MinusB, Rational(-1)));
      break;
    case LinRel::Eq:
      Assert(false, DeltaRational(MinusB));
      if (!Conflict)
        Assert(true, DeltaRational(MinusB));
      break;
    }
  }
  if (!Conflict)
    Conflict = Splx.check();

  if (Conflict) {
    Result.Sat = false;
    for (const auto &[Reason, Coeff] : Conflict->Reasons) {
      size_t Index = static_cast<size_t>(Reason) / 2;
      bool LowerDir = Reason % 2 == 1;
      Result.FarkasCoeffs[Index] += LowerDir ? -Coeff : Coeff;
    }
    return Result;
  }

  Result.Sat = true;
  // Eliminate delta: find an epsilon > 0 keeping every atom satisfied.
  Rational Eps(1);
  for (int Tries = 0; Tries < 200; ++Tries) {
    std::unordered_map<const Term *, Rational> Model;
    for (const auto &[V, SV] : VarIds) {
      const DeltaRational &DV = Splx.value(SV);
      Model.emplace(V, DV.real() + DV.delta() * Eps);
    }
    bool AllHold = true;
    for (const LinearAtom &Atom : Atoms)
      AllHold &= Atom.holds(Model);
    if (AllHold) {
      Result.Model = std::move(Model);
      return Result;
    }
    Eps = Eps * Rational(BigInt(1), BigInt(2));
  }
  assert(false && "failed to eliminate delta from a satisfiable system");
  return Result;
}
