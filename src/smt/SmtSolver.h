//===- smt/SmtSolver.h - CDCL(T) solver for linear integer arith -*- C++ -*-=//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT entry points the paper assumes from Z3 (§4.2): `Z3Check` is
/// `SmtSolver::check`, `Z3Model` is `SmtSolver::model`, and `Z3Eval` is
/// `SmtSolver::evalInModel`. The solver decides quantifier-free linear
/// integer arithmetic with arbitrary boolean structure plus `mod` by a
/// positive constant:
///
///   * equalities are split into two inequalities;
///   * `mod` terms are lowered with fresh quotient/remainder variables;
///   * atoms are canonicalised, integer-tightened, and become bounds on
///     simplex slack variables;
///   * the boolean skeleton runs on the CDCL core with the simplex as the
///     theory; integrality is enforced by branch-and-bound case splits
///     injected as splitting-on-demand atoms.
///
/// The solver is incremental: push()/pop() open and close assertion scopes,
/// and assert/check may be interleaved freely. Scoped assertions are
/// encoded as *assumption literals* (decisions of the CDCL core), never as
/// clauses, so the clause database — Tseitin definitions, theory conflict
/// clauses, branch-and-bound lemmas and everything learnt — stays globally
/// valid across pop() and is retained. Tseitin gates, theory atoms and
/// simplex variables are interned once and persist for the lifetime of the
/// solver, so re-asserting a formula in a later scope reuses the existing
/// encoding and tableau rows. This matches the CHC solver's CEGAR loop:
/// assert the clause skeleton once, then push/check/pop per candidate
/// interpretation.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SMT_SMTSOLVER_H
#define LA_SMT_SMTSOLVER_H

#include "logic/LinearExpr.h"
#include "logic/Term.h"
#include "sat/SatSolver.h"
#include "smt/Simplex.h"
#include "support/Cancellation.h"

#include <memory>

namespace la::smt {

/// Verdict of an SMT query.
enum class SmtResult { Sat, Unsat, Unknown };

/// Incremental CDCL(T) solver for QF linear integer arithmetic.
class SmtSolver {
public:
  /// Options bounding the search; defaults are generous for CHC-sized VCs.
  /// The conflict/split/time budgets apply per check() call.
  struct Options {
    int64_t MaxConflicts = 200000;
    /// Cap on branch-and-bound case splits (guards unbounded integer VCs).
    int64_t MaxBranchSplits = 20000;
    /// Wall-clock cap per check() in seconds (0 = unlimited).
    double TimeoutSeconds = 10;
    /// Learnt clauses are kept across checks (they are implied by the
    /// permanent clauses), but a single check may keep at most this many of
    /// them; beyond it the clause database is shrunk back to its pre-check
    /// mark to bound memory over long CEGAR runs.
    size_t LearntCarryCap = 4096;
    /// Cooperative cancellation: polled at every theory check, so a
    /// portfolio loser aborts its in-flight check() (verdict Unknown)
    /// within one propagation round instead of running out its wall clock.
    std::shared_ptr<const CancellationToken> Cancel;
  };

  explicit SmtSolver(TermManager &TM) : SmtSolver(TM, Options{}) {}
  SmtSolver(TermManager &TM, Options Opts);
  ~SmtSolver();

  SmtSolver(const SmtSolver &) = delete;
  SmtSolver &operator=(const SmtSolver &) = delete;

  /// Adds \p F (Bool sort, no unknown-predicate applications) to the
  /// assertion set. Outside any scope the formula is asserted permanently;
  /// inside a scope it is retracted by the matching pop().
  void assertFormula(const Term *F);

  /// Opens an assertion scope.
  void push();

  /// Closes the innermost scope, retracting its assertions. The encodings
  /// (Tseitin gates, atoms, simplex rows) and all learnt clauses persist.
  void pop();

  size_t numScopes() const { return ScopeMarks.size(); }

  /// Decides the conjunction of currently asserted formulas. May be called
  /// repeatedly, interleaved with assert/push/pop.
  SmtResult check();

  /// Model access; valid only after check() returned Sat. Every Int variable
  /// occurring in the assertions is mapped to an integer-valued Rational.
  const std::unordered_map<const Term *, Rational> &model() const;

  /// Evaluates a term under the current model, the `Z3Eval` analogue.
  /// Variables missing from the model (unconstrained) evaluate as 0.
  Rational evalInModel(const Term *T) const;

  /// Statistics for benchmarking. Counters are cumulative over the life of
  /// the solver.
  struct Stats {
    uint64_t NumAtoms = 0;
    uint64_t NumBranchSplits = 0;
    uint64_t Checks = 0;
    uint64_t ScopePushes = 0;
    uint64_t ScopePops = 0;
    uint64_t LearntDropped = 0; ///< learnt clauses shed by the carry cap
    sat::SatSolver::Stats Sat;
    Simplex::Stats SimplexStats;
  };
  Stats stats() const;

private:
  class TheoryBridge;

  const Term *lowerModAndEq(const Term *F);
  sat::Lit encode(const Term *F);
  sat::Lit atomLiteral(const Term *Atom);
  /// Registers the canonical atom `Expr <= 0` / `Expr < 0`; returns the
  /// positive literal of its SAT variable.
  sat::Lit registerAtom(const LinearAtom &Atom);
  Simplex::VarId simplexVarFor(const Term *Var);

  TermManager &TM;
  Options Opts;
  std::unique_ptr<TheoryBridge> Bridge;
  std::unique_ptr<sat::SatSolver> Sat;
  /// Gate literals of scoped assertions, enqueued as assumptions at check().
  std::vector<sat::Lit> Assumptions;
  /// Assumption-stack size at each push().
  std::vector<size_t> ScopeMarks;
  std::vector<const Term *> SideConstraints; ///< from mod lowering
  size_t SideCursor = 0; ///< side constraints already asserted
  std::unordered_map<const Term *, sat::Lit> EncodeCache;
  std::unordered_map<const Term *, const Term *> ModCache;
  std::unordered_map<std::string, sat::Lit> AtomCache;
  std::unordered_map<std::string, Simplex::VarId> SlackCache;
  std::unordered_map<const Term *, Simplex::VarId> VarOfTerm;
  std::vector<const Term *> IntVars; ///< registration order
  mutable std::unordered_map<const Term *, Rational> Model;
  bool RootUnsat = false; ///< a permanent assertion already failed
  uint64_t NumChecks = 0;
  uint64_t ScopePushes = 0;
  uint64_t ScopePops = 0;
  uint64_t CumulativeSplits = 0;
  uint64_t LearntDropped = 0;
};

/// Result of deciding a plain conjunction of linear atoms over rationals
/// (no integrality); used by the interpolation-based baselines.
struct ConjunctionResult {
  bool Sat = false;
  /// Model when Sat.
  std::unordered_map<const Term *, Rational> Model;
  /// Signed Farkas coefficients (indexed like the input atoms, zero when
  /// unused) when Unsat: sum coeff_i * Expr_i is a non-negative constant,
  /// positive unless some strict atom participates. Coefficients of Le/Lt
  /// atoms are non-negative; Eq atoms may contribute with either sign.
  std::vector<Rational> FarkasCoeffs;
};

/// Decides satisfiability of `Atoms` (conjunction) over the rationals with
/// exact arithmetic, returning a model or a Farkas certificate.
ConjunctionResult checkLinearConjunction(const std::vector<LinearAtom> &Atoms);

} // namespace la::smt

#endif // LA_SMT_SMTSOLVER_H
