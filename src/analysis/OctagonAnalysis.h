//===- analysis/OctagonAnalysis.h - Octagon domain over CHCs ----*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A relational octagon abstract domain over CHC systems: each predicate is
/// abstracted by one `PackedOctagon` — one small DBM per variable pack of
/// the predicate (`analysis/VariablePacks.h`) — carrying `±x_i ± x_j <= c`
/// facts with exact rational bounds and integer tightening. The clause-wise
/// transfer runs once per head pack over the pack's interaction classes
/// only: it imports the body predicates' within-pack facts, conjoins the
/// clause constraint (exactly for unit-coefficient atoms of up to two
/// variables, via sound interval/pair consequences otherwise) while
/// projecting dead clause dimensions away eagerly (live-range windowing, so
/// the scratch DBM stays small on the `gen_elevator_*`-style wide clauses),
/// equates per-head-argument slot dimensions with the head argument terms,
/// and projects onto the slots. Transfers are memoized per (clause, pack,
/// input-bounds hash) in `OctTransferCache`. The fixpoint strategy lives in
/// the shared driver, `analysis/FixpointEngine.h`.
///
/// The paper's Fig. 1 family needs exactly these facts: the interval domain
/// cannot express `x >= y`, so its invariants never discharge such queries,
/// while the octagon run yields `y - x <= 0` shaped candidates that the
/// verify pass then re-proves with `chc::checkClause` (DESIGN.md §9, §13).
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_OCTAGONANALYSIS_H
#define LA_ANALYSIS_OCTAGONANALYSIS_H

#include "analysis/AnalysisContext.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace la::analysis {

/// The octagon abstract domain: one `PackedOctagon` over the argument
/// positions. Implements the `AbstractDomain` concept
/// (`analysis/AbstractDomain.h`).
class OctagonDomain {
public:
  using Value = PackedOctagon;

  /// Rendering-only domain: `isTop`/`toInvariant` work (values carry their
  /// own layout), but `bottom`/`top`/`transfer` need the full constructor.
  OctagonDomain() = default;
  /// Transfer-capable domain over the pack layouts of \p Packs. \p Cache,
  /// when non-null, memoizes per-(clause, pack) transfers across sweeps.
  OctagonDomain(const PackDecomposition &Packs, const PackingOptions &Opts,
                OctTransferCache *Cache);

  std::string name() const { return "octagons"; }
  Value bottom(const chc::Predicate *P) const {
    return PackedOctagon::bottom(Packs->Preds[P->Index]);
  }
  Value top(const chc::Predicate *P) const {
    return PackedOctagon::top(Packs->Preds[P->Index]);
  }
  std::optional<Value>
  transfer(const chc::HornClause &C,
           const std::vector<DomainPredState<Value>> &States) const;
  bool join(Value &Into, const Value &From) const;
  void widen(Value &Into, const Value &Joined) const;
  bool narrow(Value &Into, const Value &Step) const;
  bool isTop(const Value &V) const { return V.isTop(); }
  const Term *toInvariant(TermManager &TM, const chc::Predicate *P,
                          const Value &V) const;

  /// Number of genuinely relational facts: pairwise bounds strictly tighter
  /// than what the unary bounds already imply. Zero means the octagon holds
  /// no information an interval invariant could not carry.
  static size_t relationalFactCount(const PackedOctagon &O);

private:
  struct PlanStore; // per-clause transfer plans, built lazily (.cpp)

  const PackDecomposition *Packs = nullptr;
  PackingOptions PackOpts;
  OctTransferCache *Cache = nullptr;
  std::shared_ptr<PlanStore> Plans;

  std::optional<Octagon>
  transferPack(const chc::HornClause &C, const struct OctPackPlan &PP,
               const std::vector<DomainPredState<Value>> &States) const;
};

static_assert(AbstractDomain<OctagonDomain>);

/// Runs the octagon fixpoint over the live clauses of \p Ctx and returns
/// one state per predicate index. Uses `Ctx.packs()` for the pack layouts
/// and `Ctx.OctCache` for transfer memoization.
std::vector<OctagonState>
runOctagonAnalysis(const AnalysisContext &Ctx,
                   FixpointTelemetry *Telemetry = nullptr);

/// Renders a state with the uniform cross-domain convention of
/// `domainInvariant`: `false` for bottom, nullptr for top, otherwise a
/// conjunction of bound and `±x ± y <= c` atoms over `P->Params` (pairwise
/// atoms only where strictly tighter than the unary bounds imply).
const Term *octagonInvariant(TermManager &TM, const chc::Predicate *P,
                             const OctagonState &State);

} // namespace la::analysis

#endif // LA_ANALYSIS_OCTAGONANALYSIS_H
