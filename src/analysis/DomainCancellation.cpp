//===- analysis/DomainCancellation.cpp - Token scope for domain ops -------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DomainCancellation.h"

using namespace la;
using namespace la::analysis;

namespace {
/// One slot per thread; passes on different portfolio lanes never observe
/// each other's tokens or deadlines.
thread_local std::shared_ptr<const CancellationToken> ActiveToken;
thread_local const Deadline *ActiveClock = nullptr;
} // namespace

DomainCancelScope::DomainCancelScope(
    std::shared_ptr<const CancellationToken> Token, const Deadline *Clock)
    : Previous(std::move(ActiveToken)), PreviousClock(ActiveClock) {
  ActiveToken = std::move(Token);
  ActiveClock = Clock;
}

DomainCancelScope::~DomainCancelScope() {
  ActiveToken = std::move(Previous);
  ActiveClock = PreviousClock;
}

bool DomainCancelScope::cancelled() noexcept {
  if (ActiveToken && ActiveToken->cancelled())
    return true;
  return ActiveClock && ActiveClock->expired();
}

const std::shared_ptr<const CancellationToken> &
DomainCancelScope::current() noexcept {
  return ActiveToken;
}
