//===- analysis/AnalysisContext.cpp - Shared analysis state ---------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisContext.h"

#include "analysis/InlinePass.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

void PassStats::merge(const PassStats &O) {
  Seconds += O.Seconds;
  ClausesPruned += O.ClausesPruned;
  PredicatesResolved += O.PredicatesResolved;
  PredicatesInlined += O.PredicatesInlined;
  ClausesRemoved += O.ClausesRemoved;
  BoundsFound += O.BoundsFound;
  RelationalFound += O.RelationalFound;
  InvariantsVerified += O.InvariantsVerified;
  InvariantsRejected += O.InvariantsRejected;
  SmtChecks += O.SmtChecks;
  TemplatesMined += O.TemplatesMined;
  PolyhedraFacts += O.PolyhedraFacts;
  SweepCapHits += O.SweepCapHits;
  HitSweepCap = HitSweepCap || O.HitSweepCap;
  XferCacheHits += O.XferCacheHits;
  XferCacheMisses += O.XferCacheMisses;
  LpPivots += O.LpPivots;
  PacksBuilt += O.PacksBuilt;
  LargestPack = std::max(LargestPack, O.LargestPack);
  Check.merge(O.Check);
}

std::string PassStats::toString() const {
  char Buf[512];
  int N = snprintf(Buf, sizeof(Buf),
                   "%-10s %8.3fs  pruned %zu  resolved %zu  bounds %zu  "
                   "relational %zu  verified %zu  rejected %zu  smt %zu",
                   Name.c_str(), Seconds, ClausesPruned, PredicatesResolved,
                   BoundsFound, RelationalFound, InvariantsVerified,
                   InvariantsRejected, SmtChecks);
  if (PredicatesInlined + ClausesRemoved > 0 && N > 0 &&
      static_cast<size_t>(N) < sizeof(Buf))
    N += snprintf(Buf + N, sizeof(Buf) - N, "  inlined %zu  removed %zu",
                  PredicatesInlined, ClausesRemoved);
  if (TemplatesMined + PolyhedraFacts > 0 && N > 0 &&
      static_cast<size_t>(N) < sizeof(Buf))
    N += snprintf(Buf + N, sizeof(Buf) - N, "  templates %zu  polyfacts %zu",
                  TemplatesMined, PolyhedraFacts);
  if (SweepCapHits > 0 && N > 0 && static_cast<size_t>(N) < sizeof(Buf))
    N += snprintf(Buf + N, sizeof(Buf) - N, "  sweep-capped %zu",
                  SweepCapHits);
  if (PacksBuilt > 0 && N > 0 && static_cast<size_t>(N) < sizeof(Buf))
    N += snprintf(Buf + N, sizeof(Buf) - N, "  packs %zu (max %zu)",
                  PacksBuilt, LargestPack);
  if (XferCacheHits + XferCacheMisses > 0 && N > 0 &&
      static_cast<size_t>(N) < sizeof(Buf))
    N += snprintf(Buf + N, sizeof(Buf) - N, "  xfer-cache %zu/%zu",
                  XferCacheHits, XferCacheHits + XferCacheMisses);
  if (LpPivots > 0 && N > 0 && static_cast<size_t>(N) < sizeof(Buf))
    N += snprintf(Buf + N, sizeof(Buf) - N, "  lp-pivots %llu",
                  static_cast<unsigned long long>(LpPivots));
  if (Check.CacheHits + Check.CacheMisses > 0 && N > 0 &&
      static_cast<size_t>(N) < sizeof(Buf))
    snprintf(Buf + N, sizeof(Buf) - N,
             "  cache %llu/%llu  pushes %llu  reuse %llu",
             static_cast<unsigned long long>(Check.CacheHits),
             static_cast<unsigned long long>(Check.CacheHits +
                                             Check.CacheMisses),
             static_cast<unsigned long long>(Check.ScopePushes),
             static_cast<unsigned long long>(Check.RebuildsAvoided));
  return Buf;
}

size_t AnalysisResult::numLiveClauses() const {
  size_t N = 0;
  for (char L : LiveClause)
    N += L != 0;
  return N;
}

size_t AnalysisResult::boundsFound() const {
  size_t N = 0;
  for (const auto &[P, Bs] : Bounds)
    for (const ArgBounds &B : Bs)
      N += (B.HasLo ? 1 : 0) + (B.HasHi ? 1 : 0);
  return N;
}

size_t AnalysisResult::relationalFound() const {
  size_t N = 0;
  for (const PassStats &P : Passes)
    if (P.Name == "verify")
      N += P.RelationalFound;
  return N;
}

double AnalysisResult::totalSeconds() const {
  double S = 0;
  for (const PassStats &P : Passes)
    S += P.Seconds;
  return S;
}

size_t AnalysisResult::smtChecks() const {
  size_t N = 0;
  for (const PassStats &P : Passes)
    N += P.SmtChecks;
  return N;
}

FeatureCounters AnalysisResult::featureCounters() const {
  FeatureCounters F;
  for (const PassStats &P : Passes) {
    F.PredicatesInlined += P.PredicatesInlined;
    F.ClausesRemoved += P.ClausesRemoved;
    if (P.Name == "verify")
      F.PolyhedraFacts += P.PolyhedraFacts;
  }
  F.ClausesPruned = clausesPruned();
  F.PredicatesResolved = predicatesResolved();
  F.BoundsFound = boundsFound();
  F.RelationalFound = relationalFound();
  F.ProvedSat = ProvedSat;
  F.TimedOut = TimedOut;
  return F;
}

AnalysisResult AnalysisResult::allLive(const ChcSystem &System) {
  AnalysisResult R;
  R.LiveClause.assign(System.clauses().size(), 1);
  return R;
}

std::string AnalysisResult::report() const {
  char Buf[256];
  snprintf(Buf, sizeof(Buf),
           "analysis: %zu/%zu clauses pruned, %zu predicates resolved, "
           "%zu bounds, %zu invariants (%zu relational facts), "
           "proved-sat=%s, %.3fs\n",
           clausesPruned(), LiveClause.size(), predicatesResolved(),
           boundsFound(), Invariants.size(), relationalFound(),
           ProvedSat ? "yes" : "no", totalSeconds());
  std::string Out = Buf;
  for (const PassStats &P : Passes)
    Out += "  " + P.toString() + "\n";
  return Out;
}

AnalysisContext::AnalysisContext(const ChcSystem &System, AnalysisOptions Opts)
    : TM(System.termManager()), Opts(std::move(Opts)),
      Clock(this->Opts.TimeoutSeconds), Sys(&System) {
  Result.LiveClause.assign(System.clauses().size(), 1);
  SkipPred.assign(System.predicates().size(), 0);
}

void AnalysisContext::adoptTransformed(std::shared_ptr<chc::ChcSystem> T,
                                       std::shared_ptr<const InlineMap> M) {
  assert(T && M && "adoptTransformed needs a system and its map");
  assert(Result.Fixed.empty() && Result.Invariants.empty() &&
         "the inline pass must run before any annotating pass");
  Result.Transformed = std::move(T);
  Result.Inline = std::move(M);
  Sys = Result.Transformed.get();
  Result.LiveClause.assign(Sys->clauses().size(), 1);
  // Eliminated predicates stay registered (so indices line up with the
  // original system) but have no clauses; mask them so no later pass tries
  // to resolve or bound them. They are deliberately NOT added to `Fixed`:
  // their final interpretations come from back-translation after solving.
  SkipPred.assign(Sys->predicates().size(), 0);
  for (size_t I = 0; I < Result.Inline->Eliminated.size(); ++I)
    if (Result.Inline->Eliminated[I])
      SkipPred[I] = 1;
  // Pack layouts and memoized transfers refer to the previous system's
  // clauses and predicate indices; recompute against the new one.
  PacksCache.reset();
  OctXfer.clear();
}

const PackDecomposition &AnalysisContext::packs() const {
  if (!PacksCache)
    PacksCache = std::make_shared<const PackDecomposition>(
        computePackDecomposition(*Sys, Result.LiveClause, Opts.Packs));
  return *PacksCache;
}

bool AnalysisContext::prune(size_t ClauseIdx) {
  bool WasLive = Result.LiveClause[ClauseIdx];
  Result.LiveClause[ClauseIdx] = 0;
  return WasLive;
}

void AnalysisContext::fix(const Predicate *P, const Term *Interp) {
  Result.Fixed[P] = Interp;
  if (SkipPred.empty())
    SkipPred.assign(Sys->predicates().size(), 0);
  SkipPred[P->Index] = 1;
}
