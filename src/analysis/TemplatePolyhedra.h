//===- analysis/TemplatePolyhedra.h - Template polyhedron value -*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The template-polyhedra abstract domain value (Sankaranarayanan, Sipma,
/// Manna, "Scalable analysis of linear systems using mathematical
/// programming"): a *fixed* matrix of coefficient rows per predicate, an
/// abstract value instantiating each row `sum a_i * x_i` with an upper
/// bound `<= c` (or +infinity). With the matrix fixed, join and widening
/// are exact row-wise bound operations, and the expensive part — making
/// every implied bound explicit ("closure") and deciding emptiness — is a
/// series of LP maximization queries answered by the existing exact
/// `Simplex` through `smt::LpProblem`. No new arithmetic backend, no
/// floating point, no rounding.
///
/// Rows are mined statically from the clause system (see
/// `analysis/TemplateAnalysis.h`); the octagon-shaped defaults `±x_i`,
/// `±x_i ± x_j` make the domain at least as expressive as the octagon rung
/// on small arities, and mined rows like `x - 2y` reach invariants neither
/// intervals nor octagons can state.
///
/// Like `Octagon`, closure is lazy (mutable `Closed` flag) and cancellable:
/// the LP loop polls `DomainCancelScope` / the installed token, and an
/// interrupted closure leaves bounds un-tightened — the concretization
/// never changes, so cancellation costs precision only. Every invariant
/// rendered from a value is a candidate re-proved by `chc::checkClause`
/// before anything downstream trusts it (DESIGN.md §9, §12).
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_TEMPLATEPOLYHEDRA_H
#define LA_ANALYSIS_TEMPLATEPOLYHEDRA_H

#include "analysis/Interval.h"
#include "analysis/Octagon.h"
#include "support/DeltaRational.h"
#include "support/Rational.h"

#include <memory>
#include <string>
#include <vector>

namespace la::analysis {

/// Largest value an *integral* quantity can take under the rational
/// delta-upper-bound \p B: `floor` for non-strict optima, "largest integer
/// strictly below" when the delta part is negative (a strict constraint was
/// active at the optimum).
Rational integralUpperBound(const DeltaRational &B);

/// One template row: integral coefficients over the argument positions,
/// normalized to gcd 1 (so per-row integer tightening is a plain floor).
struct TemplateRow {
  std::vector<Rational> Coef;

  /// Number of nonzero coefficients; rows with two or more carry relational
  /// content no interval invariant could express.
  size_t arity() const;
  bool operator==(const TemplateRow &O) const { return Coef == O.Coef; }
  bool operator<(const TemplateRow &O) const;
  std::string toString() const;
};

/// The fixed row matrix of one predicate. Shared (immutable) by every
/// abstract value of that predicate, so values are just bound vectors.
struct TemplateMatrix {
  size_t Arity = 0;
  std::vector<TemplateRow> Rows;
};
using TemplateMatrixRef = std::shared_ptr<const TemplateMatrix>;

/// Knobs of the template miner and the polyhedron transfer function.
struct TemplateMiningOptions {
  /// Hard cap on rows per predicate (defaults first, then mined rows, then
  /// guard combinations; excess is dropped deterministically).
  size_t MaxTemplatesPerPredicate = 32;
  /// Octagon-shaped pair defaults `±x_i ± x_j` are added only up to this
  /// arity (4 sign combinations per pair grow quadratically).
  size_t PairDefaultMaxArity = 3;
  /// Mined rows combined pairwise (`r1 + r2`) are taken from at most this
  /// many mined rows.
  size_t MaxCombinedRows = 6;
  /// Cap on the DNF branches one clause constraint may expand into inside
  /// the transfer function; past it, only the top-level conjunctive atoms
  /// are used (sound: dropping constraints over-approximates).
  size_t MaxTransferBranches = 8;
};

/// A (possibly empty) template polyhedron: `/\_r  Rows[r] . x <= Bound[r]`.
class TemplatePolyhedron {
public:
  /// A value over the empty matrix (top of a zero-row template); exists so
  /// `DomainPredState` can default-construct.
  TemplatePolyhedron() = default;

  /// Top: every row unbounded.
  static TemplatePolyhedron top(TemplateMatrixRef M);
  /// Bottom: the empty polyhedron.
  static TemplatePolyhedron bottom(TemplateMatrixRef M);

  const TemplateMatrixRef &matrix() const { return Mat; }
  size_t numRows() const { return Bounds.size(); }
  size_t arity() const { return Mat ? Mat->Arity : 0; }

  /// Triggers LP closure (feasibility) on first use.
  bool isEmpty() const;
  /// True when no finite bound holds (and the polyhedron is non-empty).
  bool isTop() const;

  /// Conjoins `Rows[Row] . x <= C` (meet with the existing bound). Marks
  /// the value un-closed.
  void setBound(size_t Row, const Rational &C);
  /// Installs an already-tight bound vector (transfer builds values this
  /// way); `Closed` asserts the caller guarantees tightness.
  void setAllBounds(std::vector<OctBound> B, bool AreClosed);

  /// The tightest bound on `Rows[Row] . x` implied by the whole value
  /// (closes first).
  OctBound boundOfRow(size_t Row) const;
  /// The raw stored bound (no closure); what `setBound` accumulated.
  const OctBound &storedBound(size_t Row) const { return Bounds[Row]; }

  /// The interval on argument \p Arg implied by the unary rows `±e_Arg`
  /// (after closure). Infinite when the matrix has no such rows.
  Interval boundOf(size_t Arg) const;

  /// True when the point (one rational per argument) satisfies every row.
  bool contains(const std::vector<Rational> &Point) const;

  /// Number of finite-bound rows with two or more variables after closure —
  /// the genuinely relational content, reported as `polyhedra_facts`.
  size_t relationalRowCount() const;

  /// Lattice union: row-wise max of the closed bounds. The result is
  /// closed: each max is attained by one operand's points, so every bound
  /// stays tight over the union's best abstraction.
  TemplatePolyhedron join(const TemplatePolyhedron &O) const;
  /// Lattice intersection: row-wise min (un-closed; closure re-establishes
  /// tightness and detects emptiness).
  TemplatePolyhedron meet(const TemplatePolyhedron &O) const;
  /// Standard template widening: rows whose bound in \p Next exceeds this
  /// value's bound are dropped to +infinity; stable rows keep this value's
  /// bound. Dropping constraints from a closed value keeps it closed.
  TemplatePolyhedron widen(const TemplatePolyhedron &Next) const;

  /// Semantic comparison (both sides closed first).
  bool operator==(const TemplatePolyhedron &O) const;
  bool operator!=(const TemplatePolyhedron &O) const { return !(*this == O); }

  std::string toString() const;

private:
  TemplateMatrixRef Mat;
  /// Lazily tightened; `close()` never changes the concretization, hence
  /// the mutable state (same discipline as `Octagon`).
  mutable std::vector<OctBound> Bounds;
  mutable bool Empty = false;
  mutable bool Closed = true;

  /// LP closure: feasibility plus one maximization per row, with integer
  /// tightening (rows are integral with gcd 1, so tightening is `floor`).
  /// Polls the `DomainCancelScope` token; on cancellation the value stays
  /// un-closed (sound, see file comment).
  void close() const;
};

} // namespace la::analysis

#endif // LA_ANALYSIS_TEMPLATEPOLYHEDRA_H
