//===- analysis/IntervalAnalysis.h - Interval fixpoint over CHCs -*- C++ -*-==//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A non-relational interval/constant abstract interpreter over CHC systems:
/// each predicate argument position is abstracted by one `Interval`, and the
/// clause-wise transfer function propagates body-argument intervals through
/// the clause constraint (conjunctions, one level of disjunction, and linear
/// atoms with integer tightening) into the head-argument terms. The fixpoint
/// iteration applies standard widening after a configurable delay so
/// recursive systems converge.
///
/// The result is a *candidate* over-approximation: the pass pipeline
/// (`analysis/PassManager.h`) re-verifies every emitted invariant with
/// `chc::checkClause` before anything downstream may trust it.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_INTERVALANALYSIS_H
#define LA_ANALYSIS_INTERVALANALYSIS_H

#include "analysis/Interval.h"
#include "chc/Chc.h"

#include <vector>

namespace la::analysis {

/// Knobs of the interval fixpoint engine.
struct IntervalAnalysisOptions {
  /// Joins applied to one predicate before switching to widening.
  size_t WideningDelay = 3;
  /// Hard cap on whole-system sweeps (a safety net; widening guarantees
  /// convergence long before this).
  size_t MaxSweeps = 64;
  /// Descending iterations after the widened fixpoint; these recover bounds
  /// that widening overshot (e.g. the upper bound a loop guard implies).
  size_t NarrowingPasses = 2;
};

/// Abstract value of one predicate: one interval per argument position.
/// `Reachable == false` is bottom (no derivation reaches the predicate).
struct PredIntervalState {
  bool Reachable = false;
  std::vector<Interval> Args;
  /// Number of joins applied so far (drives the widening delay).
  size_t Updates = 0;

  bool hasFiniteBound() const {
    for (const Interval &I : Args)
      if (I.hasLo() || I.hasHi())
        return true;
    return false;
  }
};

/// Runs the interval fixpoint over the live clauses of \p System and returns
/// one state per predicate index. \p SkipPred masks predicates that earlier
/// passes already resolved (their states stay bottom and their applications
/// are treated as unconstrained).
std::vector<PredIntervalState>
runIntervalAnalysis(const chc::ChcSystem &System,
                    const std::vector<char> &LiveClause,
                    const std::vector<char> &SkipPred,
                    const IntervalAnalysisOptions &Opts);

/// Renders a state as a conjunction of bound atoms over the predicate's
/// formal parameters: `false` for bottom, nullptr when no finite bound
/// exists (the invariant would be `true` and is not worth emitting).
const Term *intervalInvariant(TermManager &TM, const chc::Predicate *P,
                              const PredIntervalState &State);

} // namespace la::analysis

#endif // LA_ANALYSIS_INTERVALANALYSIS_H
