//===- analysis/IntervalAnalysis.h - Interval domain over CHCs --*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A non-relational interval/constant abstract domain over CHC systems:
/// each predicate argument position is abstracted by one `Interval`, and the
/// clause-wise transfer function propagates body-argument intervals through
/// the clause constraint (conjunctions, one level of disjunction, and linear
/// atoms with integer tightening) into the head-argument terms. The fixpoint
/// strategy (sweeps, delayed widening, narrowing) lives in the shared
/// domain-parametric driver, `analysis/FixpointEngine.h`.
///
/// The result is a *candidate* over-approximation: the pass pipeline
/// (`analysis/PassManager.h`) re-verifies every emitted invariant with
/// `chc::checkClause` before anything downstream may trust it.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_INTERVALANALYSIS_H
#define LA_ANALYSIS_INTERVALANALYSIS_H

#include "analysis/AnalysisContext.h"

#include <optional>
#include <string>
#include <vector>

namespace la::analysis {

/// Legacy name of the shared engine knobs, kept for source compatibility
/// with the pre-`AnalysisContext` API.
using IntervalAnalysisOptions = FixpointOptions;

/// The interval abstract domain: one `Interval` per argument position.
/// Implements the `AbstractDomain` concept (`analysis/AbstractDomain.h`).
class IntervalDomain {
public:
  using Value = std::vector<Interval>;

  std::string name() const { return "intervals"; }
  Value bottom(const chc::Predicate *P) const {
    return Value(P->arity(), Interval::empty());
  }
  Value top(const chc::Predicate *P) const {
    return Value(P->arity(), Interval::top());
  }
  std::optional<Value>
  transfer(const chc::HornClause &C,
           const std::vector<DomainPredState<Value>> &States) const;
  bool join(Value &Into, const Value &From) const;
  void widen(Value &Into, const Value &Joined) const;
  bool narrow(Value &Into, const Value &Step) const;
  bool isTop(const Value &V) const;
  const Term *toInvariant(TermManager &TM, const chc::Predicate *P,
                          const Value &V) const;
};

static_assert(AbstractDomain<IntervalDomain>);

/// Runs the interval fixpoint over the live clauses of \p Ctx and returns
/// one state per predicate index (`Ctx` itself is not modified; the caller
/// decides where the states go).
std::vector<IntervalState>
runIntervalAnalysis(const AnalysisContext &Ctx,
                    FixpointTelemetry *Telemetry = nullptr);

/// Renders a state with the uniform cross-domain convention of
/// `domainInvariant`: `false` for bottom, nullptr for top (no finite bound
/// anywhere), otherwise a conjunction of bound atoms over `P->Params`.
const Term *intervalInvariant(TermManager &TM, const chc::Predicate *P,
                              const IntervalState &State);

} // namespace la::analysis

#endif // LA_ANALYSIS_INTERVALANALYSIS_H
