//===- analysis/TemplateAnalysis.cpp - Template polyhedra over CHCs -------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/TemplateAnalysis.h"

#include "analysis/DomainCancellation.h"
#include "analysis/FixpointEngine.h"
#include "logic/LinearExpr.h"
#include "smt/LpSolver.h"

#include <algorithm>
#include <map>
#include <set>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

/// Clause-variable numbering: every distinct Int variable of the clause
/// gets one LP dimension, in discovery order (same scheme as the octagon
/// transfer).
using VarMap = std::map<const Term *, size_t, TermIdLess>;

void collectVars(const Term *T, VarMap &Idx) {
  if (T->kind() == TermKind::Var) {
    if (T->sort() == Sort::Int && !Idx.count(T))
      Idx.emplace(T, Idx.size());
    return;
  }
  for (const Term *Op : T->operands())
    collectVars(Op, Idx);
}

/// Scales \p Coef so every entry is an integer and their gcd is 1 (the sign
/// pattern is preserved: a row and its negation stay distinct templates).
/// Returns false for the all-zero row.
bool normalizeRow(std::vector<Rational> &Coef) {
  Rational Scale(1);
  bool AnyNonzero = false;
  for (const Rational &C : Coef) {
    if (C.isZero())
      continue;
    AnyNonzero = true;
    Scale *= Rational(C.denominator());
  }
  if (!AnyNonzero)
    return false;
  BigInt G;
  for (Rational &C : Coef) {
    C *= Scale;
    G = BigInt::gcd(G, C.numerator());
  }
  Rational Div{G};
  if (Div != Rational(1))
    for (Rational &C : Coef)
      C /= Div;
  return true;
}

//===----------------------------------------------------------------------===//
// Template mining
//===----------------------------------------------------------------------===//

/// Collects the linear atoms of a constraint tree, looking through And/Or
/// and single negations. Mining wants *directions*, not truth: an atom
/// under a disjunction is as good a template hint as a top-level one.
void collectAtomExprs(const Term *T, std::vector<LinearExpr> &Out) {
  switch (T->kind()) {
  case TermKind::And:
  case TermKind::Or:
    for (const Term *Op : T->operands())
      collectAtomExprs(Op, Out);
    return;
  case TermKind::Not:
    collectAtomExprs(T->operand(0), Out);
    return;
  case TermKind::Le:
  case TermKind::Lt:
  case TermKind::Eq:
    if (std::optional<LinearAtom> A = LinearAtom::fromTerm(T))
      Out.push_back(std::move(A->Expr));
    return;
  default:
    return;
  }
}

/// Deduplicating, order-preserving row accumulator with a hard cap. When a
/// pack layout is supplied, rows whose support spans more than one variable
/// pack are rejected: packing already gave those cross-pack relations up in
/// the octagon domain, and mining them here would re-grow exactly the LP
/// dimensions packing removed (DESIGN.md §13).
class RowSet {
public:
  RowSet(size_t Arity, size_t Cap, const PredPacks *Packs = nullptr)
      : Arity(Arity), Cap(Cap), Packs(Packs) {}

  void add(std::vector<Rational> Coef) {
    if (Rows.size() >= Cap || !normalizeRow(Coef))
      return;
    if (Packs && crossesPacks(Coef))
      return;
    TemplateRow R{std::move(Coef)};
    if (Seen.insert(R).second)
      Rows.push_back(std::move(R));
  }

  std::vector<TemplateRow> take() { return std::move(Rows); }
  const std::vector<TemplateRow> &rows() const { return Rows; }
  size_t arity() const { return Arity; }

private:
  bool crossesPacks(const std::vector<Rational> &Coef) const {
    size_t Pack = ~size_t(0);
    for (size_t J = 0; J < Coef.size(); ++J) {
      if (Coef[J].isZero())
        continue;
      if (Pack == ~size_t(0))
        Pack = Packs->PackOf[J];
      else if (Packs->PackOf[J] != Pack)
        return true;
    }
    return false;
  }

  size_t Arity;
  size_t Cap;
  const PredPacks *Packs;
  std::set<TemplateRow> Seen;
  std::vector<TemplateRow> Rows;
};

/// Projects every collected constraint direction of clause \p C onto the
/// argument positions of \p App (arguments that are plain Int variables
/// map to their position; everything else is dropped from the projection).
/// Each projected direction contributes itself and its negation.
void mineFromApp(const PredApp &App, const std::vector<LinearExpr> &Atoms,
                 RowSet &Rows, std::vector<TemplateRow> &Harvested) {
  std::map<const Term *, size_t, TermIdLess> ArgPos;
  for (size_t J = 0; J < App.Args.size(); ++J)
    if (App.Args[J]->kind() == TermKind::Var &&
        App.Args[J]->sort() == Sort::Int)
      ArgPos.emplace(App.Args[J], J); // first position wins on duplicates
  if (ArgPos.empty())
    return;
  for (const LinearExpr &E : Atoms) {
    std::vector<Rational> Coef(Rows.arity());
    bool Any = false;
    for (const auto &[Var, C] : E.coefficients()) {
      auto It = ArgPos.find(Var);
      if (It == ArgPos.end())
        continue;
      Coef[It->second] += C;
      Any = true;
    }
    if (!Any)
      continue;
    std::vector<Rational> Neg(Coef.size());
    for (size_t J = 0; J < Coef.size(); ++J)
      Neg[J] = -Coef[J];
    // Remember the normalized direction for the pairwise combination step.
    std::vector<Rational> Canon = Coef;
    if (normalizeRow(Canon))
      Harvested.push_back(TemplateRow{std::move(Canon)});
    Rows.add(std::move(Coef));
    Rows.add(std::move(Neg));
  }
}

} // namespace

std::vector<TemplateMatrixRef>
analysis::mineTemplates(const AnalysisContext &Ctx,
                        const TemplateMiningOptions &Opts) {
  const auto &Preds = Ctx.system().predicates();
  const auto &Clauses = Ctx.system().clauses();

  // Constraint directions of each live clause, shared across predicates.
  // Query clauses carry their guard in the head formula (`body -> guard`),
  // and that guard is often exactly the direction the invariant must bound,
  // so it is harvested alongside the body constraint.
  std::vector<std::vector<LinearExpr>> ClauseAtoms(Clauses.size());
  for (size_t CI = 0; CI < Clauses.size(); ++CI)
    if (Ctx.isLive(CI)) {
      collectAtomExprs(Clauses[CI].Constraint, ClauseAtoms[CI]);
      if (Clauses[CI].HeadFormula)
        collectAtomExprs(Clauses[CI].HeadFormula, ClauseAtoms[CI]);
    }

  std::vector<TemplateMatrixRef> Out(Preds.size());
  for (const Predicate *P : Preds) {
    auto M = std::make_shared<TemplateMatrix>();
    M->Arity = P->arity();
    Out[P->Index] = M;
    if (Ctx.isFixed(P) || P->arity() == 0)
      continue; // masked or nullary: empty matrix, values are always top

    size_t N = P->arity();
    const PredPacks *Layout = Ctx.packs().Preds[P->Index].get();
    RowSet Rows(N, Opts.MaxTemplatesPerPredicate, Layout);

    // Octagon-shaped defaults: unary rows always, pair rows on small
    // arities (they subsume the interval and octagon rungs there).
    for (size_t I = 0; I < N; ++I)
      for (int S : {+1, -1}) {
        std::vector<Rational> Coef(N);
        Coef[I] = Rational(S);
        Rows.add(std::move(Coef));
      }
    if (N <= Opts.PairDefaultMaxArity)
      for (size_t I = 0; I < N; ++I)
        for (size_t J = I + 1; J < N; ++J)
          for (int SI : {+1, -1})
            for (int SJ : {+1, -1}) {
              std::vector<Rational> Coef(N);
              Coef[I] = Rational(SI);
              Coef[J] = Rational(SJ);
              Rows.add(std::move(Coef));
            }

    // Harvested rows: clause constraint directions projected through every
    // application of P (head and body alike).
    std::vector<TemplateRow> Harvested;
    for (size_t CI = 0; CI < Clauses.size(); ++CI) {
      if (!Ctx.isLive(CI) || ClauseAtoms[CI].empty())
        continue;
      const HornClause &C = Clauses[CI];
      if (C.HeadPred && C.HeadPred->Pred == P)
        mineFromApp(*C.HeadPred, ClauseAtoms[CI], Rows, Harvested);
      for (const PredApp &App : C.Body)
        if (App.Pred == P)
          mineFromApp(App, ClauseAtoms[CI], Rows, Harvested);
    }

    // Loop-guard combinations: pairwise sums of the first few harvested
    // directions (and their negations, which the row set already holds),
    // capturing guards split across clauses like `x <= n` + `y >= x`.
    size_t Limit = std::min(Harvested.size(), Opts.MaxCombinedRows);
    for (size_t A = 0; A < Limit; ++A)
      for (size_t B = A + 1; B < Limit; ++B) {
        std::vector<Rational> Sum(N), Diff(N);
        for (size_t J = 0; J < N; ++J) {
          Sum[J] = Harvested[A].Coef[J] + Harvested[B].Coef[J];
          Diff[J] = Harvested[A].Coef[J] - Harvested[B].Coef[J];
        }
        Rows.add(std::move(Sum));
        Rows.add(std::move(Diff));
      }

    M->Rows = Rows.take();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Transfer
//===----------------------------------------------------------------------===//

namespace {

/// One DNF branch: a conjunction of linear atoms.
using Branch = std::vector<LinearAtom>;

/// Expands a constraint into DNF branches, conservatively dropping
/// non-linear atoms (sound: fewer constraints over-approximate). Returns
/// nullopt when the expansion would exceed \p Cap branches.
std::optional<std::vector<Branch>> expandDNF(const Term *T, size_t Cap) {
  switch (T->kind()) {
  case TermKind::BoolConst:
    if (T->boolValue())
      return std::vector<Branch>{Branch{}};
    return std::vector<Branch>{}; // false: no feasible branch
  case TermKind::And: {
    std::vector<Branch> Acc{Branch{}};
    for (const Term *Op : T->operands()) {
      std::optional<std::vector<Branch>> Sub = expandDNF(Op, Cap);
      if (!Sub)
        return std::nullopt;
      std::vector<Branch> Next;
      if (Acc.size() * Sub->size() > Cap)
        return std::nullopt;
      for (const Branch &L : Acc)
        for (const Branch &R : *Sub) {
          Branch Merged = L;
          Merged.insert(Merged.end(), R.begin(), R.end());
          Next.push_back(std::move(Merged));
        }
      Acc = std::move(Next);
    }
    return Acc;
  }
  case TermKind::Or: {
    std::vector<Branch> Acc;
    for (const Term *Op : T->operands()) {
      std::optional<std::vector<Branch>> Sub = expandDNF(Op, Cap);
      if (!Sub)
        return std::nullopt;
      if (Acc.size() + Sub->size() > Cap)
        return std::nullopt;
      for (Branch &B : *Sub)
        Acc.push_back(std::move(B));
    }
    return Acc;
  }
  case TermKind::Le:
  case TermKind::Lt:
  case TermKind::Eq:
    if (std::optional<LinearAtom> A = LinearAtom::fromTerm(T))
      return std::vector<Branch>{Branch{std::move(*A)}};
    return std::vector<Branch>{Branch{}}; // non-linear: ignore (sound)
  case TermKind::Not:
    if (std::optional<LinearAtom> A = LinearAtom::fromTerm(T->operand(0)))
      if (A->Rel != LinRel::Eq)
        return std::vector<Branch>{Branch{A->negated()}};
    return std::vector<Branch>{Branch{}};
  default:
    return std::vector<Branch>{Branch{}}; // unknown boolean structure
  }
}

/// Fallback when the DNF blows the cap: only the conjunctive spine's atoms
/// (everything under an Or is ignored, which over-approximates).
void collectConjunctiveAtoms(const Term *T, Branch &Out, bool &False) {
  switch (T->kind()) {
  case TermKind::BoolConst:
    if (!T->boolValue())
      False = true;
    return;
  case TermKind::And:
    for (const Term *Op : T->operands())
      collectConjunctiveAtoms(Op, Out, False);
    return;
  case TermKind::Le:
  case TermKind::Lt:
  case TermKind::Eq:
    if (std::optional<LinearAtom> A = LinearAtom::fromTerm(T))
      Out.push_back(std::move(*A));
    return;
  case TermKind::Not:
    if (std::optional<LinearAtom> A = LinearAtom::fromTerm(T->operand(0)))
      if (A->Rel != LinRel::Eq)
        Out.push_back(A->negated());
    return;
  default:
    return;
  }
}

/// The LP image of one clause under one DNF branch: clause variables plus
/// one slot variable per head argument position.
class ClauseLp {
public:
  ClauseLp(const VarMap &Idx, size_t Arity,
           const std::shared_ptr<const CancellationToken> &Cancel)
      : Idx(Idx), Lp(Cancel) {
    for (size_t I = 0; I < Idx.size(); ++I)
      Lp.addVar();
    Slots.reserve(Arity);
    for (size_t K = 0; K < Arity; ++K)
      Slots.push_back(Lp.addVar());
  }

  /// `sum over a LinearExpr's variables` as an LP combo; the constant part
  /// is returned through \p ConstOut.
  smt::LinearCombo comboOf(const LinearExpr &E, Rational &ConstOut) const {
    smt::LinearCombo C;
    for (const auto &[Var, Coef] : E.coefficients())
      C.emplace_back(static_cast<int>(Idx.at(Var)), Coef);
    ConstOut = E.constant();
    return C;
  }

  /// Conjoins the facts of one body application's polyhedron. Returns
  /// false when the application is infeasible outright.
  bool importBodyApp(const PredApp &App, const TemplatePolyhedron &PV) {
    if (PV.isEmpty())
      return false;
    const TemplateMatrixRef &M = PV.matrix();
    if (!M || M->Rows.empty())
      return true;
    // Argument terms as linear expressions; non-linear arguments block
    // every row that mentions their position (sound: the row is dropped).
    std::vector<std::optional<LinearExpr>> ArgExpr(App.Args.size());
    for (size_t J = 0; J < App.Args.size(); ++J)
      ArgExpr[J] = LinearExpr::fromTerm(App.Args[J]);
    for (size_t R = 0; R < M->Rows.size(); ++R) {
      OctBound B = PV.boundOfRow(R);
      if (!B.Finite)
        continue;
      const TemplateRow &Row = M->Rows[R];
      smt::LinearCombo Combo;
      Rational Const;
      bool Ok = true;
      for (size_t J = 0; J < Row.Coef.size() && Ok; ++J) {
        if (Row.Coef[J].isZero())
          continue;
        if (!ArgExpr[J]) {
          Ok = false;
          break;
        }
        for (const auto &[Var, Coef] : ArgExpr[J]->coefficients())
          Combo.emplace_back(static_cast<int>(Idx.at(Var)),
                             Coef * Row.Coef[J]);
        Const += ArgExpr[J]->constant() * Row.Coef[J];
      }
      if (!Ok)
        continue;
      // row . args <= b  with  args = exprs + consts:
      // row . exprs <= b - row . consts.
      Lp.addLe(Combo, B.B - Const);
    }
    return true;
  }

  void addAtom(const LinearAtom &A) {
    Rational Const;
    smt::LinearCombo Combo = comboOf(A.Expr, Const);
    switch (A.Rel) {
    case LinRel::Le:
      Lp.addLe(Combo, -Const);
      break;
    case LinRel::Lt:
      Lp.addLt(Combo, -Const);
      break;
    case LinRel::Eq:
      Lp.addEq(Combo, -Const);
      break;
    }
  }

  /// Equates head slot \p K with the head argument expression.
  void equateSlot(size_t K, const LinearExpr &E) {
    Rational Const;
    smt::LinearCombo Combo = comboOf(E, Const);
    Combo.emplace_back(Slots[K], Rational(-1));
    // expr - slot = -const.
    Lp.addEq(Combo, -Const);
  }

  bool feasible() { return Lp.feasible(); }

  /// Tightest integral upper bound on `Row . slots`, +inf on unbounded or
  /// cancelled queries.
  OctBound maximizeRow(const TemplateRow &Row) {
    smt::LinearCombo Objective;
    for (size_t K = 0; K < Row.Coef.size(); ++K)
      if (!Row.Coef[K].isZero())
        Objective.emplace_back(Slots[K], Row.Coef[K]);
    smt::LpProblem::Optimum Opt = Lp.maximize(Objective);
    if (Opt.St == smt::LpProblem::Status::Optimal)
      return OctBound::of(integralUpperBound(Opt.Value));
    return OctBound::inf();
  }

private:
  const VarMap &Idx;
  smt::LpProblem Lp;
  std::vector<int> Slots;
};

} // namespace

std::optional<TemplateDomain::Value>
TemplateDomain::transfer(const HornClause &C,
                         const std::vector<DomainPredState<Value>> &States)
    const {
  for (const PredApp &App : C.Body)
    if (!States[App.Pred->Index].Reachable)
      return std::nullopt;

  const TemplateMatrixRef &Mat = Matrices[C.HeadPred->Pred->Index];

  VarMap Idx;
  for (const PredApp &App : C.Body)
    for (const Term *Arg : App.Args)
      collectVars(Arg, Idx);
  for (const Term *Arg : C.HeadPred->Args)
    collectVars(Arg, Idx);
  collectVars(C.Constraint, Idx);

  std::optional<std::vector<Branch>> Branches =
      expandDNF(C.Constraint, MineOpts.MaxTransferBranches);
  if (!Branches) {
    Branch Fallback;
    bool False = false;
    collectConjunctiveAtoms(C.Constraint, Fallback, False);
    Branches.emplace();
    if (!False)
      Branches->push_back(std::move(Fallback));
  }

  size_t Arity = C.HeadPred->Args.size();
  std::vector<std::optional<LinearExpr>> HeadExpr(Arity);
  for (size_t K = 0; K < Arity; ++K)
    HeadExpr[K] = LinearExpr::fromTerm(C.HeadPred->Args[K]);

  std::optional<Value> Joined;
  for (const Branch &B : *Branches) {
    if (isCancelled(Cancel))
      break;
    ClauseLp Lp(Idx, Arity, Cancel);
    bool BodyOk = true;
    for (const PredApp &App : C.Body)
      if (!Lp.importBodyApp(App, States[App.Pred->Index].Value)) {
        BodyOk = false;
        break;
      }
    if (!BodyOk)
      continue;
    for (const LinearAtom &A : B)
      Lp.addAtom(A);
    for (size_t K = 0; K < Arity; ++K)
      if (HeadExpr[K])
        Lp.equateSlot(K, *HeadExpr[K]); // non-linear: slot unconstrained
    if (!Lp.feasible())
      continue;

    std::vector<OctBound> Bounds;
    Bounds.reserve(Mat ? Mat->Rows.size() : 0);
    if (Mat)
      for (const TemplateRow &Row : Mat->Rows)
        Bounds.push_back(Lp.maximizeRow(Row));
    Value V = TemplatePolyhedron::top(Mat);
    // Each bound is the tight supremum over this branch's image, so the
    // branch value is closed by construction.
    V.setAllBounds(std::move(Bounds), /*AreClosed=*/true);
    Joined = Joined ? Joined->join(V) : std::move(V);
  }
  return Joined;
}

bool TemplateDomain::join(Value &Into, const Value &From) const {
  Value Joined = Into.join(From);
  if (Joined == Into)
    return false;
  Into = std::move(Joined);
  return true;
}

void TemplateDomain::widen(Value &Into, const Value &Joined) const {
  Into = Into.widen(Joined);
}

bool TemplateDomain::narrow(Value &Into, const Value &Step) const {
  Value M = Into.meet(Step);
  if (M.isEmpty() || M == Into)
    return false;
  Into = std::move(M);
  return true;
}

namespace {

/// Renders a polyhedron as a conjunction of `sum a_i x_i <= c` atoms over
/// the predicate's formal parameters.
const Term *renderPolyhedron(TermManager &TM, const Predicate *P,
                             const TemplatePolyhedron &V) {
  if (V.isEmpty())
    return TM.mkFalse();
  const TemplateMatrixRef &M = V.matrix();
  std::vector<const Term *> Conj;
  if (M)
    for (size_t R = 0; R < M->Rows.size(); ++R) {
      OctBound B = V.boundOfRow(R);
      if (!B.Finite)
        continue;
      const TemplateRow &Row = M->Rows[R];
      std::vector<const Term *> Sum;
      for (size_t J = 0; J < Row.Coef.size(); ++J) {
        if (Row.Coef[J].isZero())
          continue;
        Sum.push_back(Row.Coef[J] == Rational(1)
                          ? P->Params[J]
                          : TM.mkMul(Row.Coef[J], P->Params[J]));
      }
      Conj.push_back(TM.mkLe(TM.mkAdd(std::move(Sum)), TM.mkIntConst(B.B)));
    }
  if (Conj.empty())
    return TM.mkTrue(); // unreachable behind the isTop gate
  return TM.mkAnd(std::move(Conj));
}

} // namespace

const Term *TemplateDomain::toInvariant(TermManager &TM, const Predicate *P,
                                        const Value &V) const {
  return renderPolyhedron(TM, P, V);
}

std::vector<PolyhedraState>
analysis::runTemplateAnalysis(const AnalysisContext &Ctx,
                              std::vector<TemplateMatrixRef> *Matrices,
                              FixpointTelemetry *Telemetry) {
  std::vector<TemplateMatrixRef> Mined =
      mineTemplates(Ctx, Ctx.Opts.Mining);
  if (Matrices)
    *Matrices = Mined;
  // Value-internal LP closures poll the installed token and deadline (the
  // transfer LPs carry the token explicitly as well).
  DomainCancelScope Scope(Ctx.Opts.Smt.Cancel, &Ctx.Clock);
  TemplateDomain Dom(std::move(Mined), Ctx.Opts.Mining, Ctx.Opts.Smt.Cancel);
  return runDomainAnalysis(Dom, Ctx, Ctx.Opts.Polyhedra, Telemetry);
}

const Term *analysis::templateInvariant(TermManager &TM, const Predicate *P,
                                        const PolyhedraState &State) {
  if (!State.Reachable)
    return TM.mkFalse();
  if (State.Value.isTop())
    return nullptr;
  return renderPolyhedron(TM, P, State.Value);
}
