//===- analysis/DependencyGraph.h - Predicate dependency graph --*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predicate dependency graph of a CHC system restricted to a live
/// clause subset, with the two reachability queries the slicing passes need:
///
///   * `derivableFromFacts`: the least fixpoint of "some defining clause has
///     an all-derivable body", ignoring clause constraints. A predicate
///     outside this set has no derivation at all, so interpreting it as
///     `false` validates (and removes) every clause that mentions it.
///   * `reachesQuery`: the backward cone of influence of the query clauses.
///     A predicate outside the cone is never demanded by any query, so
///     interpreting it as `true` validates (and removes) its defining
///     clauses.
///
/// Both are over-approximation arguments: see the "Analysis layer" section
/// of DESIGN.md for the soundness proofs.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_DEPENDENCYGRAPH_H
#define LA_ANALYSIS_DEPENDENCYGRAPH_H

#include "chc/Chc.h"

#include <vector>

namespace la::analysis {

struct AnalysisContext;

/// Body-to-head dependency analysis over the live clauses of a system.
class DependencyGraph {
public:
  /// \p LiveClause is a per-clause-index liveness mask (empty = all live).
  DependencyGraph(const chc::ChcSystem &System,
                  const std::vector<char> &LiveClause);
  /// The graph over the live clauses of an analysis context.
  explicit DependencyGraph(const AnalysisContext &Ctx);

  /// Per-predicate-index flag: derivable from fact clauses when constraints
  /// are assumed satisfiable (a sound over-approximation of derivability).
  std::vector<char> derivableFromFacts() const;

  /// Per-predicate-index flag: the predicate occurs (transitively through
  /// clause bodies) underneath some live query clause.
  std::vector<char> reachesQuery() const;

private:
  bool isLive(size_t ClauseIdx) const {
    return Live.empty() || Live[ClauseIdx];
  }

  const chc::ChcSystem &System;
  /// Copied, not referenced: callers routinely pass temporaries (the empty
  /// mask literal), and the mask is tiny.
  std::vector<char> Live;
};

} // namespace la::analysis

#endif // LA_ANALYSIS_DEPENDENCYGRAPH_H
