//===- analysis/Octagon.cpp - Octagon abstract domain value ---------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Octagon.h"

#include "analysis/DomainCancellation.h"

#include <cassert>
#include <cstdlib>

using namespace la;
using namespace la::analysis;

namespace {

/// Largest even integer <= V, as a rational (the tight bound for a
/// `2x <= V` constraint over integer x).
Rational evenFloor(const Rational &V) {
  Rational Half = floorOf(V * Rational(BigInt(1), BigInt(2)));
  return Half * Rational(2);
}

} // namespace

Octagon::Octagon(size_t NumVars) : N(NumVars) {
  M.assign(4 * N * N, OctBound::inf());
  for (size_t P = 0; P < 2 * N; ++P)
    at(P, P) = OctBound::of(Rational(0));
}

Octagon Octagon::bottom(size_t NumVars) {
  Octagon O(NumVars);
  O.Empty = true;
  return O;
}

void Octagon::markEmpty() { Empty = true; }

void Octagon::setEdge(size_t P, size_t Q, const Rational &C) {
  OctBound B = OctBound::of(C);
  if (B < at(P, Q)) {
    at(P, Q) = B;
    Closed = false;
  }
  // Coherence: v_Q - v_P and v_bar(P) - v_bar(Q) are the same constraint.
  if (B < at(bar(Q), bar(P))) {
    at(bar(Q), bar(P)) = std::move(B);
    Closed = false;
  }
}

void Octagon::addUpper(size_t I, const Rational &C) {
  assert(I < N);
  // x_I <= C  is  v_{2I} - v_{2I+1} <= 2C.
  setEdge(2 * I + 1, 2 * I, C * Rational(2));
}

void Octagon::addLower(size_t I, const Rational &C) {
  assert(I < N);
  // x_I >= C  is  v_{2I+1} - v_{2I} <= -2C.
  setEdge(2 * I, 2 * I + 1, C * Rational(-2));
}

void Octagon::addPair(size_t I, bool NegI, size_t J, bool NegJ,
                      const Rational &C) {
  assert(I < N && J < N && I != J);
  // s_I x_I + s_J x_J <= C  is  v_q - v_bar(p) <= C  with p, q the signed
  // forms of the two addends.
  size_t P = 2 * I + (NegI ? 1 : 0);
  size_t Q = 2 * J + (NegJ ? 1 : 0);
  setEdge(bar(P), Q, C);
}

void Octagon::close() const {
  if (Empty || Closed)
    return;
  size_t Dim = 2 * N;
  // Floyd-Warshall + octagonal strengthening, iterated to a fixpoint (one
  // round suffices in theory for rationals; the loop is belt and braces and
  // terminates immediately when nothing changes).
  for (int Round = 0; Round < 2; ++Round) {
    for (size_t K = 0; K < Dim; ++K) {
      // Cooperative cancellation at the O(Dim^2) inner-loop boundary: an
      // interrupted closure leaves the matrix un-closed — a representation
      // with the same concretization — so a large DBM cannot stall
      // portfolio cancellation and nothing downstream loses soundness.
      if (DomainCancelScope::cancelled())
        return;
      for (size_t P = 0; P < Dim; ++P) {
        const OctBound &PK = at(P, K);
        if (!PK.Finite)
          continue;
        for (size_t Q = 0; Q < Dim; ++Q) {
          OctBound Via = PK + at(K, Q);
          if (Via < at(P, Q))
            at(P, Q) = std::move(Via);
        }
      }
    }
    bool Strengthened = false;
    for (size_t P = 0; P < Dim; ++P)
      for (size_t Q = 0; Q < Dim; ++Q) {
        // v_Q - v_P <= (v_bar(P) - v_P)/2 + (v_Q - v_bar(Q))/2.
        const OctBound &A = at(P, bar(P));
        const OctBound &B = at(bar(Q), Q);
        if (!A.Finite || !B.Finite)
          continue;
        OctBound T = OctBound::of((A.B + B.B) * Rational(BigInt(1), BigInt(2)));
        if (T < at(P, Q)) {
          at(P, Q) = std::move(T);
          Strengthened = true;
        }
      }
    if (!Strengthened)
      break;
  }
  // Integer tightening: every represented expression (x_j - x_i, x_j + x_i,
  // 2x_i) is integral over integer variables, so bounds floor; the unary
  // `2x_i <= c` entries floor to the nearest even integer. Strengthen once
  // more so the tightened unaries propagate into the pairwise entries.
  for (size_t P = 0; P < Dim; ++P)
    for (size_t Q = 0; Q < Dim; ++Q) {
      OctBound &E = at(P, Q);
      if (!E.Finite)
        continue;
      E.B = Q == bar(P) ? evenFloor(E.B) : floorOf(E.B);
    }
  for (size_t P = 0; P < Dim; ++P)
    for (size_t Q = 0; Q < Dim; ++Q) {
      const OctBound &A = at(P, bar(P));
      const OctBound &B = at(bar(Q), Q);
      if (!A.Finite || !B.Finite)
        continue;
      OctBound T =
          OctBound::of(floorOf((A.B + B.B) * Rational(BigInt(1), BigInt(2))));
      if (T < at(P, Q))
        at(P, Q) = std::move(T);
    }
  // Emptiness: a negative self-loop, or contradictory unary bounds.
  for (size_t P = 0; P < Dim && !Empty; ++P) {
    if (at(P, P).Finite && at(P, P).B.isNegative())
      Empty = true;
    const OctBound &Lo = at(P, bar(P));
    const OctBound &Hi = at(bar(P), P);
    if (Lo.Finite && Hi.Finite && (Lo.B + Hi.B).isNegative())
      Empty = true;
  }
  if (!Empty)
    for (size_t P = 0; P < Dim; ++P)
      at(P, P) = OctBound::of(Rational(0));
  Closed = true;
}

bool Octagon::isEmpty() const {
  close();
  return Empty;
}

bool Octagon::isTop() const {
  if (isEmpty())
    return false;
  for (size_t P = 0; P < 2 * N; ++P)
    for (size_t Q = 0; Q < 2 * N; ++Q)
      if (P != Q && at(P, Q).Finite)
        return false;
  return true;
}

Interval Octagon::boundOf(size_t I) const {
  assert(I < N);
  if (isEmpty())
    return Interval::empty();
  Interval R = Interval::top();
  const OctBound &Hi = at(2 * I + 1, 2 * I); // 2x_I <= Hi
  const OctBound &Lo = at(2 * I, 2 * I + 1); // -2x_I <= Lo
  Rational Half(BigInt(1), BigInt(2));
  if (Hi.Finite)
    R = R.meet(Interval::atMost(Hi.B * Half));
  if (Lo.Finite)
    R = R.meet(Interval::atLeast(-(Lo.B * Half)));
  return R;
}

OctBound Octagon::pairUpper(size_t I, bool NegI, size_t J, bool NegJ) const {
  assert(I < N && J < N && I != J);
  if (isEmpty())
    return OctBound::of(Rational(-1)); // any negative bound: empty
  size_t P = 2 * I + (NegI ? 1 : 0);
  size_t Q = 2 * J + (NegJ ? 1 : 0);
  return at(bar(P), Q);
}

bool Octagon::contains(const std::vector<Rational> &Point) const {
  assert(Point.size() == N);
  if (isEmpty())
    return false;
  bool Ok = true;
  forEachConstraint([&](const OctConstraint &C) {
    Rational V = Point[C.Var1] * Rational(C.Coef1);
    if (C.Coef2 != 0)
      V += Point[C.Var2] * Rational(C.Coef2);
    Ok &= V <= C.Bound;
  });
  return Ok;
}

void Octagon::forEachConstraint(
    const std::function<void(const OctConstraint &)> &Fn) const {
  if (isEmpty())
    return;
  for (size_t I = 0; I < N; ++I) {
    Interval B = boundOf(I);
    if (B.hasHi())
      Fn({I, +1, I, 0, B.hi()});
    if (B.hasLo())
      Fn({I, -1, I, 0, -B.lo()});
  }
  const int Signs[2] = {+1, -1};
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      for (int SI : Signs)
        for (int SJ : Signs) {
          OctBound B = pairUpper(I, SI < 0, J, SJ < 0);
          if (B.Finite)
            Fn({I, SI, J, SJ, B.B});
        }
}

Octagon Octagon::join(const Octagon &O) const {
  assert(N == O.N);
  if (isEmpty())
    return O;
  if (O.isEmpty())
    return *this;
  close();
  O.close();
  Octagon R(N);
  for (size_t K = 0; K < M.size(); ++K) {
    const OctBound &A = M[K], &B = O.M[K];
    if (A.Finite && B.Finite)
      R.M[K] = A.B >= B.B ? A : B;
  }
  // The pointwise max of two closed DBMs is closed.
  R.Closed = true;
  return R;
}

Octagon Octagon::meet(const Octagon &O) const {
  assert(N == O.N);
  if (isEmpty() || O.isEmpty())
    return bottom(N);
  Octagon R(N);
  for (size_t K = 0; K < M.size(); ++K)
    R.M[K] = M[K] <= O.M[K] ? M[K] : O.M[K];
  R.Closed = false;
  return R;
}

Octagon Octagon::widen(const Octagon &Next) const {
  assert(N == Next.N);
  if (isEmpty())
    return Next;
  if (Next.isEmpty())
    return *this;
  close();
  Next.close();
  Octagon R(N);
  for (size_t K = 0; K < M.size(); ++K)
    if (M[K].Finite && Next.M[K] <= M[K])
      R.M[K] = M[K];
  for (size_t P = 0; P < 2 * N; ++P)
    R.at(P, P) = OctBound::of(Rational(0));
  R.Closed = false;
  return R;
}

Octagon Octagon::project(const std::vector<size_t> &Vars) const {
  // The emptiness query already closed the matrix on demand; an explicit
  // re-closure here would be redundant (and `close()` early-returning on the
  // `Closed` flag is exactly what the micro-assert below pins down).
  if (isEmpty())
    return bottom(Vars.size());
  Octagon R(Vars.size());
  for (size_t A = 0; A < Vars.size(); ++A)
    for (size_t B = 0; B < Vars.size(); ++B) {
      assert(Vars[A] < N && Vars[B] < N);
      for (size_t SA = 0; SA < 2; ++SA)
        for (size_t SB = 0; SB < 2; ++SB) {
          const OctBound &E = at(2 * Vars[A] + SA, 2 * Vars[B] + SB);
          OctBound &Out = R.at(2 * A + SA, 2 * B + SB);
          if (E < Out)
            Out = E;
        }
    }
  // A sub-matrix of a strongly closed matrix is strongly closed.
  R.Closed = true;
  // Differential mode: re-close a copy from scratch and demand it changed
  // nothing. Skipped when a cancellation interrupted the source's closure
  // (the sub-matrix is then merely sound, not canonical).
  static const bool CrossCheck = std::getenv("LA_CHECK_INCREMENTAL") != nullptr;
  if (CrossCheck && Closed && !DomainCancelScope::cancelled()) {
    Octagon Check = R;
    Check.Closed = false;
    Check.close();
    assert(Check == R && "projection of a closed octagon must stay closed");
    if (Check != R)
      return Check; // release builds: prefer the canonical form
  }
  return R;
}

void Octagon::forget(size_t I) {
  assert(I < N);
  if (isEmpty()) // closes on demand, so implied facts survive the reset
    return;
  size_t A = 2 * I, B = 2 * I + 1;
  for (size_t Q = 0; Q < 2 * N; ++Q) {
    at(A, Q) = OctBound::inf();
    at(Q, A) = OctBound::inf();
    at(B, Q) = OctBound::inf();
    at(Q, B) = OctBound::inf();
  }
  at(A, A) = OctBound::of(Rational(0));
  at(B, B) = OctBound::of(Rational(0));
  // Removing constraints cannot break strong closure, so `Closed` survives.
}

size_t Octagon::hash() const {
  if (isEmpty())
    return 0x9e3779b97f4a7c15ULL;
  size_t H = N;
  for (size_t K = 0; K < M.size(); ++K)
    if (M[K].Finite)
      H = H * 1099511628211ULL ^ (K + 0x9e37) ^ (M[K].B.hash() * 31);
  return H;
}

bool Octagon::operator==(const Octagon &O) const {
  if (N != O.N)
    return false;
  if (isEmpty() || O.isEmpty())
    return isEmpty() == O.isEmpty();
  close();
  O.close();
  for (size_t K = 0; K < M.size(); ++K)
    if (!(M[K] == O.M[K]))
      return false;
  return true;
}

std::string Octagon::toString() const {
  if (isEmpty())
    return "false";
  if (isTop())
    return "true";
  std::string Out;
  forEachConstraint([&](const OctConstraint &C) {
    if (!Out.empty())
      Out += " /\\ ";
    Out += (C.Coef1 < 0 ? "-x" : "x") + std::to_string(C.Var1);
    if (C.Coef2 != 0)
      Out += std::string(C.Coef2 < 0 ? " - x" : " + x") +
             std::to_string(C.Var2);
    Out += " <= " + C.Bound.toString();
  });
  return Out;
}
