//===- analysis/DomainCancellation.h - Token scope for domain ops -*- C++ -*-=//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for loops *inside* abstract-domain values: the
/// octagon strong closure and the polyhedron LP closure run deep inside
/// lattice operators (`join`, `==`, `project`), which have no parameter
/// channel for a `CancellationToken`. Instead, the analysis pass installs
/// the token in a thread-local slot for the duration of its run, and the
/// value-internal loops poll `DomainCancelScope::cancelled()` at their loop
/// heads.
///
/// Cancellation mid-closure is sound by construction: an interrupted
/// closure simply leaves the value un-closed (a syntactic state with the
/// same concretization), and every downstream consumer either re-closes or
/// treats the value as an over-approximation; invariants are independently
/// re-proved by the verify pass regardless (DESIGN.md §9).
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_DOMAINCANCELLATION_H
#define LA_ANALYSIS_DOMAINCANCELLATION_H

#include "support/Cancellation.h"
#include "support/Timer.h"

namespace la::analysis {

/// RAII installer of the thread-local cancellation token (and optional
/// analysis deadline) polled by domain-value internal loops. Scopes nest:
/// the previous slot is restored on destruction.
///
/// The deadline matters because `AnalysisOptions::TimeoutSeconds` is
/// otherwise only polled between fixpoint sweeps: one octagon transfer over
/// a clause with hundreds of SSA dimensions (or one LP closure burst) can
/// blow far past the budget inside a single sweep. With the deadline in the
/// slot, the same loop-head polls that serve cooperative cancellation also
/// enforce the time budget.
class DomainCancelScope {
public:
  explicit DomainCancelScope(std::shared_ptr<const CancellationToken> Token,
                             const Deadline *Clock = nullptr);
  DomainCancelScope(const DomainCancelScope &) = delete;
  DomainCancelScope &operator=(const DomainCancelScope &) = delete;
  ~DomainCancelScope();

  /// True when this thread's installed token has tripped or its installed
  /// deadline has expired.
  static bool cancelled() noexcept;

  /// The installed token (possibly null); lets pass-level code forward the
  /// active token into calls that take one explicitly (e.g. LP queries).
  static const std::shared_ptr<const CancellationToken> &current() noexcept;

private:
  std::shared_ptr<const CancellationToken> Previous;
  const Deadline *PreviousClock;
};

} // namespace la::analysis

#endif // LA_ANALYSIS_DOMAINCANCELLATION_H
