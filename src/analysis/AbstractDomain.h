//===- analysis/AbstractDomain.h - Domain-parametric analysis ---*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `AbstractDomain` concept behind the clause-wise abstract-interpretation
/// engine (`analysis/FixpointEngine.h`). A domain supplies the per-predicate
/// abstract value, the lattice operators (join / widen / narrow), the clause
/// transfer function, and the rendering of a value as a candidate invariant
/// formula. `IntervalAnalysis` (non-relational boxes) and `OctagonAnalysis`
/// (relational `±x ± y <= c` facts) both implement it, sharing one fixpoint
/// driver instead of duplicating the sweep / widening / narrowing machinery.
///
/// Every invariant a domain produces is a *candidate* only: the verify pass
/// re-proves it with `chc::checkClause` before anything downstream may trust
/// it (DESIGN.md §9), so a domain bug can cost precision but never soundness.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_ABSTRACTDOMAIN_H
#define LA_ANALYSIS_ABSTRACTDOMAIN_H

#include "chc/Chc.h"

#include <concepts>
#include <optional>
#include <string>
#include <vector>

namespace la::analysis {

/// Knobs of the clause-wise fixpoint engine, shared by every abstract domain
/// (each domain instance gets its own copy in `AnalysisOptions`).
struct FixpointOptions {
  /// Joins applied to one predicate before switching to widening.
  size_t WideningDelay = 3;
  /// Hard cap on whole-system sweeps (a safety net; widening guarantees
  /// convergence long before this for intervals, and bounds the rare
  /// closure/widening oscillation for relational domains).
  size_t MaxSweeps = 64;
  /// Descending iterations after the widened fixpoint; these recover bounds
  /// that widening overshot (e.g. the upper bound a loop guard implies).
  size_t NarrowingPasses = 2;
};

/// What the fixpoint driver did on one run: how many ascending sweeps ran
/// and whether the `MaxSweeps` safety net cut iteration short of a real
/// fixpoint. Surfaced through `PassStats` so a capped run is
/// distinguishable from clean convergence in `summary()` and
/// `BENCH_table1.json` (a capped run's candidates are still sound — the
/// verify pass re-proves everything — but precision silently suffered).
struct FixpointTelemetry {
  /// Ascending sweeps executed.
  size_t Sweeps = 0;
  /// True when the ascending loop stopped at `MaxSweeps` while the states
  /// were still changing (deadline expiry is not counted).
  bool HitSweepCap = false;
};

/// Abstract state of one predicate under some domain: `Reachable == false`
/// is bottom (no derivation reaches the predicate), `Value` is the domain's
/// abstract value over the predicate's argument positions.
template <class ValueT> struct DomainPredState {
  bool Reachable = false;
  /// Number of joins applied so far (drives the widening delay).
  size_t Updates = 0;
  ValueT Value;
};

/// The contract a domain implements to plug into `runDomainAnalysis`:
///
///   * `bottom(P)`       -- the least value for a predicate of P's arity;
///   * `top(P)`          -- the greatest value (no information); the engine
///     seeds skip-masked predicates with it so `transfer` treats their body
///     occurrences as unconstrained;
///   * `transfer(C, S)`  -- the head contribution of clause C under the
///     current predicate states, or `nullopt` when some body atom is
///     unreachable or the constraint is infeasible at this abstraction;
///   * `join(Into, From)`  -- lattice union in place; true iff `Into` grew;
///   * `widen(Into, Joined)` -- `Into = Into widen Joined` (Joined is the
///     joined next iterate; unstable facts must be dropped);
///   * `narrow(Into, Step)`  -- refine `Into` towards the one-step recompute
///     `Step` (typically a meet); true iff `Into` changed. Must never narrow
///     a reachable value to bottom;
///   * `isTop(V)`        -- true when V carries no information at all, so
///     `toInvariant` would render `true` (callers emit nothing instead);
///   * `toInvariant(TM, P, V)` -- V as a formula over `P->Params`.
template <class D>
concept AbstractDomain =
    requires(const D Dom, typename D::Value V, const typename D::Value CV,
             TermManager &TM, const chc::Predicate *P,
             const chc::HornClause &C,
             const std::vector<DomainPredState<typename D::Value>> &States) {
      { Dom.name() } -> std::convertible_to<std::string>;
      { Dom.bottom(P) } -> std::same_as<typename D::Value>;
      { Dom.top(P) } -> std::same_as<typename D::Value>;
      {
        Dom.transfer(C, States)
      } -> std::same_as<std::optional<typename D::Value>>;
      { Dom.join(V, CV) } -> std::same_as<bool>;
      { Dom.widen(V, CV) };
      { Dom.narrow(V, CV) } -> std::same_as<bool>;
      { Dom.isTop(CV) } -> std::same_as<bool>;
      { Dom.toInvariant(TM, P, CV) } -> std::convertible_to<const Term *>;
    };

/// Renders a predicate state as a candidate invariant with the uniform
/// cross-domain convention: `false` for bottom (unreachable), nullptr for
/// top (the invariant would be `true` and is not worth emitting), otherwise
/// the domain's formula over the predicate's formal parameters.
template <AbstractDomain D>
const Term *domainInvariant(const D &Dom, TermManager &TM,
                            const chc::Predicate *P,
                            const DomainPredState<typename D::Value> &State) {
  if (!State.Reachable)
    return TM.mkFalse();
  if (Dom.isTop(State.Value))
    return nullptr;
  return Dom.toInvariant(TM, P, State.Value);
}

} // namespace la::analysis

#endif // LA_ANALYSIS_ABSTRACTDOMAIN_H
