//===- analysis/Octagon.h - Octagon abstract domain value -------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The octagon abstract domain value (Mine, "The octagon abstract domain"):
/// conjunctions of constraints `±x_i ± x_j <= c` over exact rationals,
/// represented as a difference-bound matrix (DBM) over 2n signed variables
/// `v_{2i} = +x_i`, `v_{2i+1} = -x_i`, where entry `M[p][q]` is an upper
/// bound on `v_q - v_p`. Strong closure (Floyd-Warshall plus the octagonal
/// strengthening step) makes every implied constraint explicit; because all
/// CHC variables range over the integers, closure also tightens every bound
/// to an integer and every unary bound `2x_i <= c` to an even one.
///
/// Closure is applied lazily: mutators mark the matrix dirty, semantic
/// queries (bounds, emptiness, join, projection, comparison) close on
/// demand. Closure never changes the concretization, so the laziness is
/// invisible semantically; the brute-force differential tests in
/// `tests/AnalysisTest.cpp` pin this down.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_OCTAGON_H
#define LA_ANALYSIS_OCTAGON_H

#include "analysis/Interval.h"
#include "support/Rational.h"

#include <functional>
#include <string>
#include <vector>

namespace la::analysis {

/// An upper bound that is either a finite rational or +infinity.
struct OctBound {
  bool Finite = false;
  Rational B;

  static OctBound inf() { return {}; }
  static OctBound of(Rational V) { return {true, std::move(V)}; }

  bool operator==(const OctBound &O) const {
    return Finite == O.Finite && (!Finite || B == O.B);
  }
  /// Total order with +infinity as the largest element.
  bool operator<(const OctBound &O) const {
    if (!Finite)
      return false;
    return !O.Finite || B < O.B;
  }
  bool operator<=(const OctBound &O) const { return !(O < *this); }

  OctBound operator+(const OctBound &O) const {
    if (!Finite || !O.Finite)
      return inf();
    return of(B + O.B);
  }
};

/// One canonical octagon constraint `Coef1 * x_Var1 + Coef2 * x_Var2 <= Bound`
/// with unit coefficients; unary constraints have `Var2 == Var1` and
/// `Coef2 == 0`. Used to enumerate the finite facts of a closed octagon.
struct OctConstraint {
  size_t Var1 = 0;
  int Coef1 = 1; ///< +1 or -1
  size_t Var2 = 0;
  int Coef2 = 0; ///< +1, -1, or 0 for a unary constraint
  Rational Bound;
};

/// A (possibly empty) octagon over a fixed number of integer variables.
class Octagon {
public:
  /// The top octagon (no constraints) over \p NumVars variables.
  explicit Octagon(size_t NumVars = 0);
  /// The empty octagon (bottom) over \p NumVars variables.
  static Octagon bottom(size_t NumVars);

  size_t numVars() const { return N; }

  bool isEmpty() const;
  /// True when no finite constraint holds (and the octagon is non-empty).
  bool isTop() const;

  /// Asserts `x_I <= C` / `x_I >= C`.
  void addUpper(size_t I, const Rational &C);
  void addLower(size_t I, const Rational &C);
  /// Asserts `s_I * x_I + s_J * x_J <= C` for `I != J`, where a true
  /// NegI/NegJ selects the negative sign.
  void addPair(size_t I, bool NegI, size_t J, bool NegJ, const Rational &C);
  /// Marks the whole octagon infeasible (e.g. a constant `1 <= 0` atom).
  void markEmpty();

  /// The interval of `x_I` implied by the (closed) octagon.
  Interval boundOf(size_t I) const;
  /// The least upper bound on `s_I * x_I + s_J * x_J` (I != J) implied by
  /// the (closed) octagon; infinite when unconstrained.
  OctBound pairUpper(size_t I, bool NegI, size_t J, bool NegJ) const;

  /// True when the integer point \p Point (one value per variable) satisfies
  /// every constraint.
  bool contains(const std::vector<Rational> &Point) const;

  /// Enumerates every finite canonical constraint of the closed octagon:
  /// unary bounds first, then the pairwise `±x_i ± x_j <= c` facts.
  void forEachConstraint(const std::function<void(const OctConstraint &)> &Fn)
      const;

  /// Lattice union; the result is closed and exact per canonical constraint
  /// (each bound is the max of the two operands' closed bounds).
  Octagon join(const Octagon &O) const;
  /// Lattice intersection (elementwise min; closure re-establishes
  /// consistency and detects emptiness).
  Octagon meet(const Octagon &O) const;
  /// Standard octagon widening: entries of \p Next that moved past this
  /// octagon's entries are dropped to +infinity. `this` is the previous
  /// iterate. Closure applied to the operands trades the textbook
  /// termination guarantee for precision; the engine's `MaxSweeps` cap is
  /// the convergence backstop (DESIGN.md §9).
  Octagon widen(const Octagon &Next) const;

  /// The closed sub-octagon over the selected variables (in order): closure
  /// makes implied constraints explicit, so projection is just taking the
  /// sub-matrix of the (already) closed matrix — no re-closure runs when the
  /// source is closed. Under `LA_CHECK_INCREMENTAL` a micro-assert verifies
  /// the "sub-matrix of a strongly closed matrix is strongly closed" fact by
  /// re-closing the result and comparing.
  Octagon project(const std::vector<size_t> &Vars) const;

  /// Existentially projects variable \p I away in place: its rows/columns
  /// reset to unconstrained. Closes first (implied facts through `x_I`
  /// materialize before the constraints on it vanish), and removing
  /// constraints from a strongly closed matrix keeps it strongly closed, so
  /// the closure flag survives. The windowed per-pack transfer recycles
  /// dimensions through this (DESIGN.md §13).
  void forget(size_t I);

  /// Hash of the closed canonical form (equal octagons of equal dimension
  /// hash equal). Used as the transfer-cache input fingerprint.
  size_t hash() const;

  /// Semantic comparison (both sides closed first).
  bool operator==(const Octagon &O) const;
  bool operator!=(const Octagon &O) const { return !(*this == O); }

  std::string toString() const;

private:
  size_t N = 0;
  /// Lazily maintained; `close()` is conceptually const (the concretization
  /// never changes), hence the mutable state.
  mutable bool Empty = false;
  mutable bool Closed = true;
  mutable std::vector<OctBound> M; ///< (2N)^2 row-major

  size_t idx(size_t P, size_t Q) const { return P * 2 * N + Q; }
  static size_t bar(size_t P) { return P ^ 1; }
  OctBound &at(size_t P, size_t Q) const { return M[idx(P, Q)]; }
  /// Writes `v_Q - v_P <= C` and its coherent mirror entry.
  void setEdge(size_t P, size_t Q, const Rational &C);
  /// Strong closure + integer tightening + emptiness detection.
  void close() const;
};

} // namespace la::analysis

#endif // LA_ANALYSIS_OCTAGON_H
