//===- analysis/AnalysisContext.h - Shared analysis state -------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared state every analysis pass and abstract domain operates on: the
/// CHC system, the live-clause mask, the skip-predicate mask, the per-pass
/// options, the accumulated `AnalysisResult`, and a stats sink. One
/// `AnalysisContext` replaces the `(System, LiveClause, SkipPred, Opts)`
/// parameter lists that used to be duplicated across `src/analysis`
/// (DESIGN.md §9).
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_ANALYSISCONTEXT_H
#define LA_ANALYSIS_ANALYSISCONTEXT_H

#include "analysis/AbstractDomain.h"
#include "analysis/Interval.h"
#include "analysis/Octagon.h"
#include "chc/ChcCheck.h"
#include "support/Timer.h"

#include <map>
#include <string>
#include <vector>

namespace la::analysis {

/// Counters of one pass execution (also used merged across runs by the
/// benchmark harness).
struct PassStats {
  std::string Name;
  double Seconds = 0;
  size_t ClausesPruned = 0;
  size_t PredicatesResolved = 0;
  size_t BoundsFound = 0;
  /// Relational (two-variable) facts: candidates for the octagon pass,
  /// facts inside verified invariants for the verify pass.
  size_t RelationalFound = 0;
  size_t InvariantsVerified = 0;
  size_t InvariantsRejected = 0;
  size_t SmtChecks = 0;
  /// Incremental clause-check counters (populated by passes that go through
  /// chc::ClauseCheckContext, currently the verify pass).
  chc::CheckStats Check;

  /// Sums the counters of \p O into this (the name is kept).
  void merge(const PassStats &O);
  std::string toString() const;
};

/// Configuration of the pipeline.
struct AnalysisOptions {
  bool EnableSlicing = true;
  bool EnableIntervals = true;
  bool EnableOctagons = true;
  FixpointOptions Intervals;
  FixpointOptions Octagons;
  /// SMT budget for the per-invariant verification checks.
  smt::SmtSolver::Options Smt;
  /// Soft wall-clock cap for the whole pipeline (0 = unlimited). On expiry
  /// the pipeline stops early; partial results remain sound because every
  /// pass only adds independently verified facts.
  double TimeoutSeconds = 0;
};

/// Finite per-argument bounds of one predicate, the shape handed to the
/// decision-tree learner as candidate attributes.
struct ArgBounds {
  size_t ArgIndex = 0;
  bool HasLo = false;
  bool HasHi = false;
  Rational Lo;
  Rational Hi;
};

/// Everything the pipeline proved about a system.
struct AnalysisResult {
  /// Per-clause liveness mask: pruned clauses are valid under `Fixed` plus
  /// any downstream strengthening, so the solver never re-checks them.
  std::vector<char> LiveClause;
  /// Statically resolved predicates (interpretation `true` or `false`);
  /// no live clause mentions them.
  std::map<const chc::Predicate *, const Term *> Fixed;
  /// Verified inductive invariants for live predicates (octagon candidates
  /// where they survive verification, interval candidates otherwise). Sound
  /// over-approximations: every derivable fact satisfies them.
  std::map<const chc::Predicate *, const Term *> Invariants;
  /// The finite bounds behind `Invariants`, as learner-feature fodder.
  std::map<const chc::Predicate *, std::vector<ArgBounds>> Bounds;
  /// True when the verified seed already discharges every query clause:
  /// `Fixed` + `Invariants` is a full solution and no learning is needed.
  bool ProvedSat = false;
  /// Per-pass statistics, in execution order.
  std::vector<PassStats> Passes;

  size_t numLiveClauses() const;
  size_t clausesPruned() const { return LiveClause.size() - numLiveClauses(); }
  size_t predicatesResolved() const { return Fixed.size(); }
  size_t boundsFound() const;
  /// Verified relational (two-variable) facts, summed over the passes.
  size_t relationalFound() const;
  double totalSeconds() const;
  size_t smtChecks() const;

  /// Empty result treating every clause as live (analysis disabled).
  static AnalysisResult allLive(const chc::ChcSystem &System);

  /// Multi-line human-readable report for benches and examples.
  std::string report() const;
};

/// Abstract per-predicate states of the two bundled domains.
using IntervalState = DomainPredState<std::vector<Interval>>;
using OctagonState = DomainPredState<Octagon>;

/// Shared mutable state the passes and domain engines operate on: system +
/// live-clause mask + skip-pred mask + options + result + stats sink.
struct AnalysisContext {
  const chc::ChcSystem &System;
  TermManager &TM;
  /// Held by value so a context outlives any temporary it was built from
  /// (the deprecated wrappers construct one on the fly).
  AnalysisOptions Opts;
  Deadline Clock;
  /// Per-predicate-index mask of predicates some earlier pass resolved;
  /// domain engines treat them as unconstrained and never update them.
  /// Maintained by `fix()`; empty means "nothing masked".
  std::vector<char> SkipPred;
  AnalysisResult Result;
  /// Raw interval states, populated by the interval pass for the verifier.
  std::vector<IntervalState> Intervals;
  /// Raw octagon states, populated by the octagon pass for the verifier.
  std::vector<OctagonState> Octagons;

  explicit AnalysisContext(const chc::ChcSystem &System,
                           AnalysisOptions Opts = {});

  bool isLive(size_t ClauseIdx) const { return Result.LiveClause[ClauseIdx]; }
  /// Prunes a clause; returns true when it was live before.
  bool prune(size_t ClauseIdx);
  bool isFixed(const chc::Predicate *P) const {
    return !SkipPred.empty() && SkipPred[P->Index];
  }
  /// Resolves \p P to the constant interpretation \p Interp and masks it for
  /// every later pass.
  void fix(const chc::Predicate *P, const Term *Interp);

  /// The stats sink of the currently running pass (a local scratch outside
  /// the pass pipeline, so domain engines can always count).
  PassStats &stats() { return Sink ? *Sink : Scratch; }
  void setStatsSink(PassStats *S) { Sink = S; }

private:
  PassStats *Sink = nullptr;
  PassStats Scratch;
};

} // namespace la::analysis

#endif // LA_ANALYSIS_ANALYSISCONTEXT_H
