//===- analysis/AnalysisContext.h - Shared analysis state -------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared state every analysis pass and abstract domain operates on: the
/// CHC system, the live-clause mask, the skip-predicate mask, the per-pass
/// options, the accumulated `AnalysisResult`, and a stats sink. One
/// `AnalysisContext` replaces the `(System, LiveClause, SkipPred, Opts)`
/// parameter lists that used to be duplicated across `src/analysis`
/// (DESIGN.md §9).
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_ANALYSISCONTEXT_H
#define LA_ANALYSIS_ANALYSISCONTEXT_H

#include "analysis/AbstractDomain.h"
#include "analysis/Interval.h"
#include "analysis/Octagon.h"
#include "analysis/TemplatePolyhedra.h"
#include "analysis/VariablePacks.h"
#include "chc/ChcCheck.h"
#include "support/Timer.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace la::analysis {

struct InlineMap; // analysis/InlinePass.h

/// Counters of one pass execution (also used merged across runs by the
/// benchmark harness).
struct PassStats {
  std::string Name;
  double Seconds = 0;
  size_t ClausesPruned = 0;
  size_t PredicatesResolved = 0;
  /// Predicates eliminated by substitution into their call sites and
  /// clauses that dropped out of the system with them (inline pass only).
  size_t PredicatesInlined = 0;
  size_t ClausesRemoved = 0;
  size_t BoundsFound = 0;
  /// Relational (two-variable) facts: candidates for the octagon pass,
  /// facts inside verified invariants for the verify pass.
  size_t RelationalFound = 0;
  size_t InvariantsVerified = 0;
  size_t InvariantsRejected = 0;
  size_t SmtChecks = 0;
  /// Template rows mined from the clause system (polyhedra pass only).
  size_t TemplatesMined = 0;
  /// Finite multi-variable template bounds: candidates for the polyhedra
  /// pass, facts inside verified polyhedral invariants for the verify pass.
  size_t PolyhedraFacts = 0;
  /// Fixpoint runs that stopped at `FixpointOptions::MaxSweeps` while still
  /// unstable (the safety net fired; convergence was not reached). At most
  /// one per domain pass execution; the merged benchmark stats count how
  /// many runs were capped.
  size_t SweepCapHits = 0;
  /// Per-pass flag behind `SweepCapHits` (true when this very execution hit
  /// the cap).
  bool HitSweepCap = false;
  /// Memoized octagon transfer-cache traffic (octagon pass only): replayed
  /// vs recomputed per-(clause, pack) transfers.
  size_t XferCacheHits = 0;
  size_t XferCacheMisses = 0;
  /// Simplex pivots spent by LP-backed lattice operations during this pass
  /// (polyhedra and verify passes), so LP cost is attributable per pass.
  uint64_t LpPivots = 0;
  /// Pack-decomposition shape behind the relational passes (octagon pass
  /// only): total packs over all predicates and the largest pack size.
  size_t PacksBuilt = 0;
  size_t LargestPack = 0;
  /// Incremental clause-check counters (populated by passes that go through
  /// chc::ClauseCheckContext, currently the verify pass).
  chc::CheckStats Check;

  /// Sums the counters of \p O into this (the name is kept).
  void merge(const PassStats &O);
  std::string toString() const;
};

/// Configuration of the pipeline.
struct AnalysisOptions {
  /// Inline non-recursive single-definition predicates into their call
  /// sites before anything else runs (the system every later pass and the
  /// CEGAR loop sees is the transformed one).
  bool EnableInlining = true;
  bool EnableSlicing = true;
  bool EnableIntervals = true;
  bool EnableOctagons = true;
  /// Template-polyhedra pass (`analysis/TemplateAnalysis.h`): mined
  /// `sum a_i x_i <= c` rows, LP-backed lattice over the exact simplex.
  bool EnablePolyhedra = true;
  FixpointOptions Intervals;
  FixpointOptions Octagons;
  FixpointOptions Polyhedra;
  /// Template mining + transfer knobs for the polyhedra pass.
  TemplateMiningOptions Mining;
  /// Variable-pack decomposition knobs shared by the relational domains
  /// (`analysis/VariablePacks.h`).
  PackingOptions Packs;
  /// SMT budget for the per-invariant verification checks.
  smt::SmtSolver::Options Smt;
  /// Soft wall-clock cap for the whole pipeline (0 = unlimited). On expiry
  /// the pipeline stops early; partial results remain sound because every
  /// pass only adds independently verified facts.
  double TimeoutSeconds = 0;
};

/// Finite per-argument bounds of one predicate, the shape handed to the
/// decision-tree learner as candidate attributes.
struct ArgBounds {
  size_t ArgIndex = 0;
  bool HasLo = false;
  bool HasHi = false;
  Rational Lo;
  Rational Hi;
};

/// Flat counters summarizing one pipeline run — the analysis half of the
/// scheduler's `ProblemFeatures` vector. Exported here (instead of the
/// scheduler re-walking `Passes`) so the feature definition lives next to
/// the counters it aggregates and cannot drift from them.
struct FeatureCounters {
  size_t PredicatesInlined = 0;
  size_t ClausesRemoved = 0;
  size_t ClausesPruned = 0;
  size_t PredicatesResolved = 0;
  size_t BoundsFound = 0;
  size_t RelationalFound = 0;
  size_t PolyhedraFacts = 0;
  bool ProvedSat = false;
  bool TimedOut = false;
};

/// Everything the pipeline proved about a system.
///
/// When the inline pass rewrote the system, `Transformed` holds the smaller
/// system and every per-clause / per-predicate field below (`LiveClause`,
/// `Fixed`, `Invariants`, `Bounds`) refers to *it*, not to the input system;
/// `Inline` carries the metadata needed to translate solutions and
/// refutations of the transformed system back to the original one
/// (`analysis/InlinePass.h`). Both handles are null when nothing was
/// inlined.
struct AnalysisResult {
  /// The inlined system the rest of the pipeline (and the CEGAR loop)
  /// operates on; null when the inline pass did not fire.
  std::shared_ptr<chc::ChcSystem> Transformed;
  /// Back-translation metadata for `Transformed`; null iff it is.
  std::shared_ptr<const InlineMap> Inline;
  /// Per-clause liveness mask: pruned clauses are valid under `Fixed` plus
  /// any downstream strengthening, so the solver never re-checks them.
  std::vector<char> LiveClause;
  /// Statically resolved predicates (interpretation `true` or `false`);
  /// no live clause mentions them.
  std::map<const chc::Predicate *, const Term *> Fixed;
  /// Verified inductive invariants for live predicates (octagon candidates
  /// where they survive verification, interval candidates otherwise). Sound
  /// over-approximations: every derivable fact satisfies them.
  std::map<const chc::Predicate *, const Term *> Invariants;
  /// The finite bounds behind `Invariants`, as learner-feature fodder.
  std::map<const chc::Predicate *, std::vector<ArgBounds>> Bounds;
  /// Verified relational template rows (coefficients over the argument
  /// positions) behind polyhedra-backed invariants: linear feature
  /// directions for the learner beyond the unary `Bounds`.
  std::map<const chc::Predicate *, std::vector<std::vector<Rational>>>
      PolyRows;
  /// True when the verified seed already discharges every query clause:
  /// `Fixed` + `Invariants` is a full solution and no learning is needed.
  bool ProvedSat = false;
  /// True when the analysis budget (`TimeoutSeconds` or the cancellation
  /// token) expired mid-pipeline: later passes ran degraded or not at all,
  /// so a weaker result does not mean the extra domains were useless.
  bool TimedOut = false;
  /// Per-pass statistics, in execution order.
  std::vector<PassStats> Passes;

  size_t numLiveClauses() const;
  size_t clausesPruned() const { return LiveClause.size() - numLiveClauses(); }
  size_t predicatesResolved() const { return Fixed.size(); }
  size_t boundsFound() const;
  /// Verified relational (two-variable) facts, summed over the passes.
  size_t relationalFound() const;
  double totalSeconds() const;
  size_t smtChecks() const;

  /// The flat counter summary behind the scheduler's feature vector.
  FeatureCounters featureCounters() const;

  /// Empty result treating every clause as live (analysis disabled).
  static AnalysisResult allLive(const chc::ChcSystem &System);

  /// Multi-line human-readable report for benches and examples.
  std::string report() const;
};

/// Abstract per-predicate states of the bundled domains.
using IntervalState = DomainPredState<std::vector<Interval>>;
using OctagonState = DomainPredState<PackedOctagon>;
using PolyhedraState = DomainPredState<TemplatePolyhedron>;

/// Shared mutable state the passes and domain engines operate on: system +
/// live-clause mask + skip-pred mask + options + result + stats sink.
///
/// The system a pass sees is `system()`: initially the input system, but
/// rebound to the inlined clone once `adoptTransformed()` runs, so the
/// interval/octagon ladder and the verify pass transparently analyze the
/// smaller system.
struct AnalysisContext {
  TermManager &TM;
  /// Held by value so a context outlives any temporary it was built from.
  AnalysisOptions Opts;
  Deadline Clock;
  /// Per-predicate-index mask of predicates some earlier pass resolved;
  /// domain engines treat them as unconstrained and never update them.
  /// Maintained by `fix()`; empty means "nothing masked".
  std::vector<char> SkipPred;
  AnalysisResult Result;
  /// Raw interval states, populated by the interval pass for the verifier.
  std::vector<IntervalState> Intervals;
  /// Raw octagon states, populated by the octagon pass for the verifier.
  std::vector<OctagonState> Octagons;
  /// Raw polyhedra states, populated by the polyhedra pass for the
  /// verifier, plus the matrices they were computed against.
  std::vector<PolyhedraState> Polyhedra;
  std::vector<TemplateMatrixRef> PolyMatrices;

  explicit AnalysisContext(const chc::ChcSystem &System,
                           AnalysisOptions Opts = {});

  /// The system every pass operates on (the inlined clone after
  /// `adoptTransformed()`, the input system before).
  const chc::ChcSystem &system() const { return *Sys; }

  /// Pipeline budget check: wall clock or cooperative cancellation (the
  /// token travels in `Opts.Smt.Cancel`, shared with every SMT check the
  /// passes issue).
  bool expired() const {
    return Clock.expired() || isCancelled(Opts.Smt.Cancel);
  }

  /// Rebinds the context to the inlined system \p T produced by the inline
  /// pass and re-initializes the per-clause / per-predicate masks to its
  /// sizes, pre-masking every eliminated predicate so later passes treat it
  /// as inert without resolving it to a constant. Must run before any other
  /// pass has recorded state (asserts `Fixed` and `Invariants` are empty).
  void adoptTransformed(std::shared_ptr<chc::ChcSystem> T,
                        std::shared_ptr<const InlineMap> M);

  /// The variable-pack decomposition of the current system, computed
  /// lazily from the live clauses at first use and cached (invalidated when
  /// `adoptTransformed()` rebinds the system). Clauses pruned after the
  /// first call leave the decomposition coarser than strictly needed, which
  /// is sound either way — any position partition is.
  const PackDecomposition &packs() const;

  /// Memoized per-(clause, pack) octagon transfer cache, shared across the
  /// octagon pass's sweeps (cleared with the pack cache). Mutable: filling
  /// a memo table does not change what the context means.
  mutable OctTransferCache OctXfer;

  bool isLive(size_t ClauseIdx) const { return Result.LiveClause[ClauseIdx]; }
  /// Prunes a clause; returns true when it was live before.
  bool prune(size_t ClauseIdx);
  bool isFixed(const chc::Predicate *P) const {
    return !SkipPred.empty() && SkipPred[P->Index];
  }
  /// Resolves \p P to the constant interpretation \p Interp and masks it for
  /// every later pass.
  void fix(const chc::Predicate *P, const Term *Interp);

  /// The stats sink of the currently running pass (a local scratch outside
  /// the pass pipeline, so domain engines can always count).
  PassStats &stats() { return Sink ? *Sink : Scratch; }
  void setStatsSink(PassStats *S) { Sink = S; }

private:
  /// Points at the input system until `adoptTransformed()` rebinds it to
  /// `Result.Transformed` (which owns the clone).
  const chc::ChcSystem *Sys;
  PassStats *Sink = nullptr;
  PassStats Scratch;
  /// Lazy cache behind `packs()`.
  mutable std::shared_ptr<const PackDecomposition> PacksCache;
};

} // namespace la::analysis

#endif // LA_ANALYSIS_ANALYSISCONTEXT_H
