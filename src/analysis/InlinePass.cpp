//===- analysis/InlinePass.cpp - Clause inlining / pred elimination -------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/InlinePass.h"

#include "logic/LinearExpr.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_set>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

/// Mutable working copy of one clause (predicates still point into the
/// original system) with the slot tree tracking its original body atoms.
struct WorkClause {
  HornClause C;
  std::vector<InlineSlot> Slots;
  size_t OrigIndex = 0;
  bool Removed = false;
};

std::vector<const Term *> conjunctsOf(const Term *T) {
  if (T->kind() == TermKind::And)
    return T->operands();
  if (T->isTrue())
    return {};
  return {T};
}

bool hasExpansion(const std::vector<InlineSlot> &Slots) {
  for (const InlineSlot &S : Slots)
    if (S.Expanded)
      return true;
  return false;
}

/// Shifts every passthrough position strictly above \p Above by \p Delta, at
/// every nesting depth (all passthroughs index the one flat body).
void shiftPassthroughs(std::vector<InlineSlot> &Slots, size_t Above,
                       ptrdiff_t Delta) {
  for (InlineSlot &S : Slots) {
    if (S.Expanded)
      shiftPassthroughs(S.Children, Above, Delta);
    else if (S.DepPos > Above)
      S.DepPos = static_cast<size_t>(static_cast<ptrdiff_t>(S.DepPos) + Delta);
  }
}

/// The unique passthrough slot referencing body position \p Pos, at any
/// depth.
InlineSlot *findPassthrough(std::vector<InlineSlot> &Slots, size_t Pos) {
  for (InlineSlot &S : Slots) {
    if (S.Expanded) {
      if (InlineSlot *R = findPassthrough(S.Children, Pos))
        return R;
    } else if (S.DepPos == Pos) {
      return &S;
    }
  }
  return nullptr;
}

/// Deep-copies a slot tree, substituting expansion arguments and offsetting
/// every passthrough position by \p Offset.
std::vector<InlineSlot>
instantiateSlots(TermManager &TM, const std::vector<InlineSlot> &Slots,
                 const std::unordered_map<const Term *, const Term *> &Subst,
                 size_t Offset) {
  std::vector<InlineSlot> Out;
  Out.reserve(Slots.size());
  for (const InlineSlot &S : Slots) {
    InlineSlot N;
    N.Expanded = S.Expanded;
    if (!S.Expanded) {
      N.DepPos = S.DepPos + Offset;
    } else {
      N.Pred = S.Pred;
      N.DefClauseIndex = S.DefClauseIndex;
      N.Args.reserve(S.Args.size());
      for (const Term *A : S.Args)
        N.Args.push_back(TM.substitute(A, Subst));
      N.Children = instantiateSlots(TM, S.Children, Subst, Offset);
    }
    Out.push_back(std::move(N));
  }
  return Out;
}

/// Replaces the call `W.C.Body[Pos]` (an application of `D.Pred`) by D's
/// residual and deps, instantiated at the call arguments, and grows the slot
/// tree accordingly.
void expandAt(TermManager &TM, WorkClause &W, size_t Pos, const InlineDef &D) {
  const PredApp Call = W.C.Body[Pos];
  assert(Call.Pred == D.Pred && "expanding the wrong body atom");
  std::unordered_map<const Term *, const Term *> Subst;
  for (size_t I = 0; I < Call.Args.size(); ++I)
    Subst.emplace(D.Pred->Params[I], Call.Args[I]);

  const size_t K = D.Deps.size();
  InlineSlot *Slot = findPassthrough(W.Slots, Pos);
  assert(Slot && "every body position has exactly one passthrough slot");
  // Renumber the untouched passthroughs first; the replacement's children
  // are created with final positions [Pos, Pos + K).
  shiftPassthroughs(W.Slots, Pos, static_cast<ptrdiff_t>(K) - 1);
  Slot->Expanded = true;
  Slot->DepPos = 0;
  Slot->Pred = D.Pred;
  Slot->DefClauseIndex = D.DefClauseIndex;
  Slot->Args = Call.Args;
  Slot->Children = instantiateSlots(TM, D.Slots, Subst, Pos);

  std::vector<PredApp> DepApps;
  DepApps.reserve(K);
  for (const PredApp &Dep : D.Deps) {
    PredApp A;
    A.Pred = Dep.Pred;
    A.Args.reserve(Dep.Args.size());
    for (const Term *T : Dep.Args)
      A.Args.push_back(TM.substitute(T, Subst));
    DepApps.push_back(std::move(A));
  }
  W.C.Body.erase(W.C.Body.begin() + static_cast<ptrdiff_t>(Pos));
  W.C.Body.insert(W.C.Body.begin() + static_cast<ptrdiff_t>(Pos),
                  DepApps.begin(), DepApps.end());
  W.C.Constraint = TM.mkAnd(W.C.Constraint, TM.substitute(D.Residual, Subst));
}

/// Applies \p Subst to every expansion argument of an existing slot tree
/// (passthrough positions are untouched).
void substSlotArgs(TermManager &TM, std::vector<InlineSlot> &Slots,
                   const std::unordered_map<const Term *, const Term *> &Subst) {
  for (InlineSlot &S : Slots) {
    if (!S.Expanded)
      continue;
    for (const Term *&A : S.Args)
      A = TM.substitute(A, Subst);
    substSlotArgs(TM, S.Children, Subst);
  }
}

/// Direct resolution at the sole use site of an eliminated predicate: when
/// every call argument is a distinct plain variable and the two clauses
/// share no variables, unification is just `call arg -> def head arg`, so
/// the resolvent keeps the defining clause's constraint and body *verbatim*
/// (no parameter detour) and rewrites the rest of the use clause under the
/// substitution. For the encoder's preheader predicates this reproduces the
/// un-split clause exactly — same hash-consed terms — which keeps solver
/// trajectories identical to the pre-split encoding. \p Floating conjuncts
/// of the defining clause are dropped (already checked satisfiable).
void expandDirectAt(TermManager &TM, WorkClause &W, size_t Pos,
                    const WorkClause &DW,
                    const std::vector<const Term *> &Floating) {
  const PredApp Call = W.C.Body[Pos];
  const HornClause &DC = DW.C;
  assert(Call.Pred == DC.HeadPred->Pred && "expanding the wrong body atom");
  std::unordered_map<const Term *, const Term *> Subst;
  for (size_t I = 0; I < Call.Args.size(); ++I)
    Subst.emplace(Call.Args[I], DC.HeadPred->Args[I]);

  const size_t K = DC.Body.size();
  InlineSlot *Slot = findPassthrough(W.Slots, Pos);
  assert(Slot && "every body position has exactly one passthrough slot");
  shiftPassthroughs(W.Slots, Pos, static_cast<ptrdiff_t>(K) - 1);
  substSlotArgs(TM, W.Slots, Subst);
  Slot->Expanded = true;
  Slot->DepPos = 0;
  Slot->Pred = Call.Pred;
  Slot->DefClauseIndex = DW.OrigIndex;
  Slot->Args = DC.HeadPred->Args;
  Slot->Children = instantiateSlots(TM, DW.Slots, {}, Pos);

  // Rewrite the rest of the use clause under the unifier; the def clause's
  // variables are untouched (disjointness is a precondition).
  for (PredApp &B : W.C.Body)
    for (const Term *&A : B.Args)
      A = TM.substitute(A, Subst);
  if (W.C.HeadPred)
    for (const Term *&A : W.C.HeadPred->Args)
      A = TM.substitute(A, Subst);
  if (W.C.HeadFormula)
    W.C.HeadFormula = TM.substitute(W.C.HeadFormula, Subst);

  std::vector<const Term *> Conj;
  for (const Term *C : conjunctsOf(DC.Constraint))
    if (std::find(Floating.begin(), Floating.end(), C) == Floating.end())
      Conj.push_back(C);
  for (const Term *C : conjunctsOf(TM.substitute(W.C.Constraint, Subst)))
    Conj.push_back(C);
  W.C.Constraint = TM.mkAnd(std::move(Conj));

  W.C.Body.erase(W.C.Body.begin() + static_cast<ptrdiff_t>(Pos));
  W.C.Body.insert(W.C.Body.begin() + static_cast<ptrdiff_t>(Pos),
                  DC.Body.begin(), DC.Body.end());
}

/// Outcome of the full-determination analysis of one defining clause.
struct DefInfo {
  bool OK = false;
  const Term *Residual = nullptr;
  std::vector<PredApp> Deps;          ///< args over P's params
  std::vector<InlineSlot> Slots;      ///< passthroughs indexing Deps
  std::vector<const Term *> Floating; ///< need one joint SAT check
};

/// Tries to express every variable of P's defining clause as an integer
/// linear term over P's parameters (Gaussian elimination on the head
/// equations and the linear equality conjuncts, pivots restricted to +-1
/// after integral normalisation so solutions are exact over Z). Conjuncts
/// over undetermined variables only are "floating" and reported for a
/// satisfiability check; a conjunct mixing determined and undetermined
/// variables, or an undetermined head/dep argument, fails the analysis.
DefInfo determineDef(TermManager &TM, const Predicate *P,
                     const WorkClause &W) {
  DefInfo Out;
  const HornClause &C = W.C;
  assert(C.HeadPred && C.HeadPred->Pred == P && "not a defining clause");

  std::unordered_set<const Term *> VarSet;
  auto AddVars = [&](const Term *T) {
    for (const Term *V : TM.collectVars(T))
      VarSet.insert(V);
  };
  AddVars(C.Constraint);
  for (const PredApp &B : C.Body)
    for (const Term *A : B.Args)
      AddVars(A);
  for (const Term *A : C.HeadPred->Args)
    AddVars(A);

  // A clause variable that *is* one of P's parameters would be captured by
  // the params -> args substitution; bail.
  std::unordered_set<const Term *> ParamSet(P->Params.begin(),
                                            P->Params.end());
  for (const Term *V : VarSet)
    if (ParamSet.count(V))
      return Out;
  auto IsClauseVar = [&](const Term *V) { return VarSet.count(V) != 0; };

  // Equation system over the clause variables, parameters as knowns:
  // `u_i - param_i = 0` plus the linear equality conjuncts of the
  // constraint.
  std::vector<LinearExpr> Pending;
  for (size_t I = 0; I < P->arity(); ++I) {
    std::optional<LinearExpr> L = LinearExpr::fromTerm(C.HeadPred->Args[I]);
    if (!L)
      return Out; // non-linear head argument (mod)
    L->addVar(P->Params[I], Rational(-1));
    Pending.push_back(std::move(*L));
  }
  for (const Term *Conj : conjunctsOf(C.Constraint)) {
    std::optional<LinearAtom> A = LinearAtom::fromTerm(Conj);
    if (A && A->Rel == LinRel::Eq)
      Pending.push_back(std::move(A->Expr));
  }

  // Gaussian elimination, ordered maps for determinism. Each round
  // substitutes the solved prefix; an equation reduced to a single clause
  // variable with a +-1 normalised coefficient solves it exactly over Z.
  std::map<const Term *, LinearExpr, TermIdLess> Sigma;
  auto SubstSolved = [&](const LinearExpr &E) {
    LinearExpr R(E.constant());
    for (const auto &[V, Cf] : E.coefficients()) {
      auto It = Sigma.find(V);
      if (It != Sigma.end())
        R = R + It->second.scaled(Cf);
      else
        R.addVar(V, Cf);
    }
    return R;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = Pending.begin(); It != Pending.end();) {
      LinearExpr E = SubstSolved(*It);
      const Term *Pivot = nullptr;
      size_t NumUnsolved = 0;
      for (const auto &[V, Cf] : E.coefficients())
        if (IsClauseVar(V)) {
          ++NumUnsolved;
          Pivot = V;
        }
      if (NumUnsolved == 0) {
        // Implied or parameter-only; the residual re-derives the latter
        // from the head equations and the conjunct classification below.
        It = Pending.erase(It);
        continue;
      }
      if (NumUnsolved == 1) {
        E.normalizeIntegral();
        Rational Cf = E.coefficient(Pivot);
        if (Cf == Rational(1) || Cf == Rational(-1)) {
          // Cf * pivot + rest = 0  =>  pivot = -rest / Cf = -Cf * rest.
          LinearExpr Sol(E.constant());
          for (const auto &[V, VC] : E.coefficients())
            if (V != Pivot)
              Sol.addVar(V, VC);
          Sigma.emplace(Pivot, Sol.scaled(-Cf));
          It = Pending.erase(It);
          Changed = true;
          continue;
        }
      }
      ++It;
    }
  }

  std::unordered_map<const Term *, const Term *> TSub;
  for (const auto &[V, L] : Sigma)
    TSub.emplace(V, L.toTerm(TM));
  auto Determined = [&](const Term *T) {
    for (const Term *V : TM.collectVars(T))
      if (IsClauseVar(V) && !Sigma.count(V))
        return false;
    return true;
  };

  for (const Term *A : C.HeadPred->Args)
    if (!Determined(A))
      return Out;
  for (const PredApp &B : C.Body)
    for (const Term *A : B.Args)
      if (!Determined(A))
        return Out;

  // Residual: head equations under sigma plus determined conjuncts under
  // sigma (parameter-only by construction). Floating conjuncts mention only
  // undetermined variables; since those occur nowhere else, the implicit
  // existential factors into one closed satisfiability question.
  std::vector<const Term *> ResidualParts;
  for (size_t I = 0; I < P->arity(); ++I)
    ResidualParts.push_back(
        TM.mkEq(P->Params[I], TM.substitute(C.HeadPred->Args[I], TSub)));
  for (const Term *Conj : conjunctsOf(C.Constraint)) {
    bool AnyDet = false, AnyUndet = false;
    for (const Term *V : TM.collectVars(Conj))
      (Sigma.count(V) ? AnyDet : AnyUndet) = true;
    if (!AnyUndet)
      ResidualParts.push_back(TM.substitute(Conj, TSub));
    else if (!AnyDet)
      Out.Floating.push_back(Conj);
    else
      return Out; // mixed conjunct: the existential does not factor
  }

  for (const PredApp &B : C.Body) {
    PredApp D;
    D.Pred = B.Pred;
    D.Args.reserve(B.Args.size());
    for (const Term *A : B.Args)
      D.Args.push_back(TM.substitute(A, TSub));
    Out.Deps.push_back(std::move(D));
  }
  Out.Slots = instantiateSlots(TM, W.Slots, TSub, 0);
  Out.Residual = TM.mkAnd(std::move(ResidualParts));
  Out.OK = true;
  return Out;
}

} // namespace

InlineResult analysis::inlineSystem(const ChcSystem &System,
                                    const smt::SmtSolver::Options &SmtOpts,
                                    size_t *SmtChecks) {
  TermManager &TM = System.termManager();
  const auto &Preds = System.predicates();
  const auto &Clauses = System.clauses();
  const size_t N = Preds.size();

  std::vector<WorkClause> Work;
  Work.reserve(Clauses.size());
  for (size_t I = 0; I < Clauses.size(); ++I) {
    WorkClause W;
    W.C = Clauses[I];
    W.OrigIndex = I;
    W.Slots.resize(W.C.Body.size());
    for (size_t J = 0; J < W.C.Body.size(); ++J)
      W.Slots[J].DepPos = J;
    Work.push_back(std::move(W));
  }

  // Candidates: exactly one defining clause, not used in a query-clause
  // body (query bodies are kept verbatim so refutations stay anchored to
  // the original assertions), and not in the body of their own defining
  // clause. Membership in a wider dependency cycle through *surviving*
  // predicates is fine: unfolding the sole definition at the use sites is
  // ordinary resolution whether or not the definition's deps eventually
  // reach back (a loop nest routes the inner preheader through the outer
  // loop head, and that preheader must still collapse).
  std::vector<char> IsCand(N, 0);
  std::vector<size_t> DefClause(N, InlineMap::npos);
  {
    std::vector<char> Excluded(N, 0);
    for (const HornClause &C : Clauses)
      if (C.isQuery())
        for (const PredApp &B : C.Body)
          Excluded[B.Pred->Index] = 1;
    for (const Predicate *P : Preds) {
      std::vector<size_t> Defs = System.clausesWithHead(P);
      if (Defs.size() != 1)
        continue;
      for (const PredApp &B : Clauses[Defs[0]].Body)
        if (B.Pred == P)
          Excluded[P->Index] = 1; // direct self-recursion
      DefClause[P->Index] = Defs[0];
      IsCand[P->Index] = !Excluded[P->Index];
    }
    // Cycles *among candidates* (mutual recursion between single-definition
    // predicates) admit no processing order; drop exactly the cycle
    // members. Candidates that merely depend on a dropped one are fine —
    // the dropped predicate survives and becomes an ordinary dep.
    std::vector<char> OnCycle(N, 0);
    for (const Predicate *P : Preds) {
      if (!IsCand[P->Index])
        continue;
      std::vector<const Predicate *> Stack{P};
      std::vector<char> Seen(N, 0);
      while (!Stack.empty()) {
        const Predicate *Q = Stack.back();
        Stack.pop_back();
        for (const PredApp &B : Clauses[DefClause[Q->Index]].Body) {
          if (!IsCand[B.Pred->Index] || Seen[B.Pred->Index])
            continue;
          if (B.Pred == P) {
            OnCycle[P->Index] = 1;
            Stack.clear();
            break;
          }
          Seen[B.Pred->Index] = 1;
          Stack.push_back(B.Pred);
        }
      }
    }
    for (size_t I = 0; I < N; ++I)
      if (OnCycle[I])
        IsCand[I] = 0;
  }

  // Process candidates dependencies-first (the candidate-restricted def
  // graph is acyclic: a cycle through defining clauses is recursion), so a
  // candidate's defining clause is fully rewritten before it is analysed
  // and recorded deps only ever mention surviving predicates.
  std::vector<const Predicate *> Order;
  {
    std::vector<char> Visited(N, 0);
    std::function<void(const Predicate *)> Visit = [&](const Predicate *P) {
      if (Visited[P->Index])
        return;
      Visited[P->Index] = 1;
      for (const PredApp &B : Clauses[DefClause[P->Index]].Body)
        if (IsCand[B.Pred->Index])
          Visit(B.Pred);
      Order.push_back(P);
    };
    for (const Predicate *P : Preds)
      if (IsCand[P->Index])
        Visit(P);
  }

  InlineMap Map;
  Map.Eliminated.assign(N, 0);
  Map.DefOf.assign(N, InlineMap::npos);

  for (const Predicate *P : Order) {
    WorkClause &DW = Work[DefClause[P->Index]];
    DefInfo Info = determineDef(TM, P, DW);
    if (!Info.OK)
      continue;
    if (!Info.Floating.empty()) {
      // Dropping the floating conjuncts is only sound when they are jointly
      // satisfiable (then `exists undetermined. floating` is `true`).
      smt::SmtSolver Solver(TM, SmtOpts);
      Solver.assertFormula(TM.mkAnd(Info.Floating));
      if (SmtChecks)
        ++*SmtChecks;
      if (Solver.check() != smt::SmtResult::Sat)
        continue;
    }

    InlineDef D;
    D.Pred = P;
    D.DefClauseIndex = DW.OrigIndex;
    D.Residual = Info.Residual;
    D.Deps = std::move(Info.Deps);
    D.Slots = std::move(Info.Slots);

    // A sole use site whose call arguments are distinct plain variables and
    // where every variable shared between the two clauses occurs among those
    // arguments takes the direct-resolution route (exact, no parameter
    // detour): with all shared occurrences covered by the unifier, applying
    // it without renaming the defining clause apart coincides with
    // rename-unify-rename-back, so no independent quantifications are
    // conflated. Everything else goes through the residual substitution.
    WorkClause *OnlyUse = nullptr;
    size_t OnlyPos = 0, Uses = 0;
    for (WorkClause &W : Work) {
      if (W.Removed || &W == &DW)
        continue;
      for (size_t Pos = 0; Pos < W.C.Body.size(); ++Pos)
        if (W.C.Body[Pos].Pred == P) {
          ++Uses;
          OnlyUse = &W;
          OnlyPos = Pos;
        }
    }
    bool Direct = Uses == 1;
    std::unordered_set<const Term *> ArgVars;
    if (Direct) {
      for (const Term *A : OnlyUse->C.Body[OnlyPos].Args)
        if (!A->isVar() || !ArgVars.insert(A).second) {
          Direct = false;
          break;
        }
    }
    if (Direct) {
      auto Collect = [&](std::unordered_set<const Term *> &Into,
                         const HornClause &C) {
        auto Add = [&](const Term *T) {
          for (const Term *V : TM.collectVars(T))
            Into.insert(V);
        };
        Add(C.Constraint);
        if (C.HeadFormula)
          Add(C.HeadFormula);
        for (const PredApp &B : C.Body)
          for (const Term *A : B.Args)
            Add(A);
        if (C.HeadPred)
          for (const Term *A : C.HeadPred->Args)
            Add(A);
      };
      std::unordered_set<const Term *> DefVars, UseVars;
      Collect(DefVars, DW.C);
      Collect(UseVars, OnlyUse->C);
      for (const Term *V : UseVars)
        if (DefVars.count(V) && !ArgVars.count(V)) {
          Direct = false;
          break;
        }
    }
    if (Direct) {
      expandDirectAt(TM, *OnlyUse, OnlyPos, DW, Info.Floating);
    } else {
      for (WorkClause &W : Work) {
        if (W.Removed || &W == &DW)
          continue;
        for (size_t Pos = 0; Pos < W.C.Body.size();) {
          if (W.C.Body[Pos].Pred == P)
            // The spliced-in deps never mention P (it is non-recursive), so
            // re-scanning from Pos terminates.
            expandAt(TM, W, Pos, D);
          else
            ++Pos;
        }
      }
    }
    DW.Removed = true;
    Map.Eliminated[P->Index] = 1;
    Map.DefOf[P->Index] = Map.Defs.size();
    Map.Defs.push_back(std::move(D));
  }

  if (Map.Defs.empty())
    return {};

  // Clone into a fresh system sharing the term manager: every predicate is
  // re-registered in original order (indices stable, parameter variables
  // pointer-identical via mkVar dedup); eliminated predicates stay
  // registered but clause-less.
  auto NewSys = std::make_shared<ChcSystem>(TM);
  std::vector<const Predicate *> NewPreds;
  NewPreds.reserve(N);
  for (const Predicate *P : Preds)
    NewPreds.push_back(NewSys->addPredicate(P->Name, P->arity()));
  for (WorkClause &W : Work) {
    if (W.Removed)
      continue;
    HornClause NC;
    NC.Constraint = W.C.Constraint;
    NC.HeadFormula = W.C.HeadFormula;
    NC.Name = W.C.Name;
    NC.Body.reserve(W.C.Body.size());
    for (const PredApp &B : W.C.Body)
      NC.Body.push_back(PredApp{NewPreds[B.Pred->Index], B.Args});
    if (W.C.HeadPred)
      NC.HeadPred =
          PredApp{NewPreds[W.C.HeadPred->Pred->Index], W.C.HeadPred->Args};
    NewSys->addClause(std::move(NC));
    ClauseOrigin O;
    O.OrigIndex = W.OrigIndex;
    O.Slots = std::move(W.Slots);
    Map.Origins.push_back(std::move(O));
  }

  InlineResult R;
  R.System = std::move(NewSys);
  R.Map = std::make_shared<const InlineMap>(std::move(Map));
  return R;
}

Interpretation analysis::backTranslateModel(const ChcSystem &Original,
                                            const ChcSystem &Transformed,
                                            const InlineMap &Map,
                                            const Interpretation &Solved) {
  TermManager &TM = Original.termManager();
  Interpretation Out(TM);
  const auto &Preds = Original.predicates();
  for (size_t I = 0; I < Preds.size(); ++I)
    if (!Map.Eliminated[I])
      Out.set(Preds[I], Solved.get(Transformed.predicates()[I]));
  // Defs were recorded dependencies-first and only ever mention surviving
  // predicates, so a single pass suffices.
  for (const InlineDef &D : Map.Defs) {
    std::vector<const Term *> Parts{D.Residual};
    for (const PredApp &Dep : D.Deps)
      Parts.push_back(Out.instantiate(Dep));
    Out.set(D.Pred, TM.mkAnd(std::move(Parts)));
  }
  return Out;
}

std::optional<Counterexample>
analysis::backTranslateCex(const ChcSystem &Original,
                           const ChcSystem &Transformed, const InlineMap &Map,
                           const Counterexample &Cex,
                           const smt::SmtSolver::Options &SmtOpts) {
  TermManager &TM = Original.termManager();
  Counterexample Out;
  std::vector<std::optional<size_t>> Memo(Cex.Nodes.size());
  bool Failed = false;

  // Re-materializes one slot into a derivation node of the original system.
  // Children are emitted before their parent, so every stored index is
  // already valid.
  std::function<size_t(const InlineSlot &,
                       const std::unordered_map<const Term *, Rational> &,
                       const std::vector<size_t> &)>
      Materialize = [&](const InlineSlot &S,
                        const std::unordered_map<const Term *, Rational> &M,
                        const std::vector<size_t> &Kids) -> size_t {
    if (!S.Expanded)
      return Kids[S.DepPos];
    Counterexample::Node NN;
    NN.Pred = S.Pred;
    NN.Args.reserve(S.Args.size());
    for (const Term *A : S.Args)
      NN.Args.push_back(evalWithDefaults(A, M));
    NN.ClauseIndex = S.DefClauseIndex;
    NN.Children.reserve(S.Children.size());
    for (const InlineSlot &Ch : S.Children)
      NN.Children.push_back(Materialize(Ch, M, Kids));
    Out.Nodes.push_back(std::move(NN));
    return Out.Nodes.size() - 1;
  };

  std::function<std::optional<size_t>(size_t)> Translate =
      [&](size_t Idx) -> std::optional<size_t> {
    if (Failed)
      return std::nullopt;
    if (Memo[Idx])
      return Memo[Idx];
    const Counterexample::Node &N = Cex.Nodes[Idx];
    if (N.ClauseIndex >= Map.Origins.size()) {
      Failed = true;
      return std::nullopt;
    }
    const ClauseOrigin &O = Map.Origins[N.ClauseIndex];
    const HornClause &TC = Transformed.clauses()[N.ClauseIndex];
    if (N.Children.size() != TC.Body.size()) {
      Failed = true;
      return std::nullopt;
    }
    std::vector<size_t> Kids;
    Kids.reserve(N.Children.size());
    for (size_t C : N.Children) {
      std::optional<size_t> K = Translate(C);
      if (!K) {
        Failed = true;
        return std::nullopt;
      }
      Kids.push_back(*K);
    }
    // One model of the clause instance recovers values for the clause
    // variables; every expansion argument at every depth is a term over
    // exactly those variables, so a single model serves the whole slot
    // tree.
    std::unordered_map<const Term *, Rational> Model;
    if (hasExpansion(O.Slots)) {
      std::vector<const Term *> Parts{TC.Constraint};
      for (size_t J = 0; J < TC.Body.size(); ++J) {
        const Counterexample::Node &Child = Cex.Nodes[N.Children[J]];
        for (size_t A = 0; A < TC.Body[J].Args.size(); ++A)
          Parts.push_back(
              TM.mkEq(TC.Body[J].Args[A], TM.mkIntConst(Child.Args[A])));
      }
      for (size_t A = 0; A < TC.HeadPred->Args.size(); ++A)
        Parts.push_back(
            TM.mkEq(TC.HeadPred->Args[A], TM.mkIntConst(N.Args[A])));
      smt::SmtSolver Solver(TM, SmtOpts);
      Solver.assertFormula(TM.mkAnd(std::move(Parts)));
      if (Solver.check() != smt::SmtResult::Sat) {
        Failed = true;
        return std::nullopt;
      }
      Model = Solver.model();
    }
    std::vector<size_t> NewKids;
    NewKids.reserve(O.Slots.size());
    for (const InlineSlot &S : O.Slots)
      NewKids.push_back(Materialize(S, Model, Kids));
    Counterexample::Node NN;
    NN.Pred = Original.predicates()[N.Pred->Index];
    NN.Args = N.Args;
    NN.ClauseIndex = O.OrigIndex;
    NN.Children = std::move(NewKids);
    Out.Nodes.push_back(std::move(NN));
    Memo[Idx] = Out.Nodes.size() - 1;
    return Memo[Idx];
  };

  if (Cex.QueryClauseIndex >= Map.Origins.size())
    return std::nullopt;
  const ClauseOrigin &QO = Map.Origins[Cex.QueryClauseIndex];
  std::vector<size_t> QKids;
  QKids.reserve(Cex.QueryChildren.size());
  for (size_t C : Cex.QueryChildren) {
    std::optional<size_t> K = Translate(C);
    if (!K)
      return std::nullopt;
    QKids.push_back(*K);
  }
  Out.QueryClauseIndex = QO.OrigIndex;
  Out.QueryChildren.reserve(QO.Slots.size());
  for (const InlineSlot &S : QO.Slots) {
    // Query-clause bodies are never expanded (their predicates are excluded
    // from inlining).
    assert(!S.Expanded && "expanded slot in a query clause");
    Out.QueryChildren.push_back(QKids[S.DepPos]);
  }
  return Out;
}

void InlinePass::run(AnalysisContext &Ctx) {
  PassStats &Stats = Ctx.stats();
  const ChcSystem &Sys = Ctx.system();
  const size_t ClausesBefore = Sys.clauses().size();
  size_t Checks = 0;
  InlineResult R = inlineSystem(Sys, Ctx.Opts.Smt, &Checks);
  Stats.SmtChecks += Checks;
  if (!R.System)
    return;
  Stats.PredicatesInlined = R.Map->numEliminated();
  Stats.ClausesRemoved = ClausesBefore - R.System->clauses().size();
  Ctx.adoptTransformed(std::move(R.System), std::move(R.Map));
}
