//===- analysis/VariablePacks.cpp - Astrée-style variable packing ---------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/VariablePacks.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

//===----------------------------------------------------------------------===//
// PredPacks
//===----------------------------------------------------------------------===//

std::shared_ptr<const PredPacks> PredPacks::monolithic(size_t Arity) {
  auto L = std::make_shared<PredPacks>();
  L->Arity = Arity;
  if (Arity > 0) {
    L->PackOf.assign(Arity, 0);
    L->Packs.emplace_back();
    for (size_t J = 0; J < Arity; ++J)
      L->Packs[0].push_back(J);
  }
  return L;
}

std::shared_ptr<const PredPacks> PredPacks::uniform(size_t Arity,
                                                    size_t PackSize) {
  assert(PackSize > 0);
  auto L = std::make_shared<PredPacks>();
  L->Arity = Arity;
  L->PackOf.resize(Arity);
  for (size_t J = 0; J < Arity; ++J) {
    size_t K = J / PackSize;
    if (K >= L->Packs.size())
      L->Packs.emplace_back();
    L->PackOf[J] = K;
    L->Packs[K].push_back(J);
  }
  return L;
}

//===----------------------------------------------------------------------===//
// Interaction graph
//===----------------------------------------------------------------------===//

namespace {

void collectIntVars(const Term *T, ClauseVarMap &Idx) {
  if (T->kind() == TermKind::Var) {
    if (T->sort() == Sort::Int && !Idx.count(T))
      Idx.emplace(T, Idx.size());
    return;
  }
  for (const Term *Op : T->operands())
    collectIntVars(Op, Idx);
}

/// Appends the indices (under \p Idx) of every Int variable below \p T.
void varIndicesOf(const Term *T, const ClauseVarMap &Idx,
                  std::vector<size_t> &Out) {
  if (T->kind() == TermKind::Var) {
    if (T->sort() == Sort::Int)
      Out.push_back(Idx.at(T));
    return;
  }
  for (const Term *Op : T->operands())
    varIndicesOf(Op, Idx, Out);
}

void uniteAll(PackUnionFind &U, const std::vector<size_t> &Vs) {
  for (size_t I = 1; I < Vs.size(); ++I)
    U.unite(Vs[0], Vs[I]);
}

/// Walks a constraint tree uniting interacting variables: conjunctions
/// recurse, every other boolean node is an interaction group (all variables
/// beneath it are related), and small disjunctions additionally couple
/// everything across their branches (branch joins correlate the variables
/// they write, see header).
void walkConstraint(const Term *T, const ClauseVarMap &Idx,
                    const PackingOptions &Opts, PackUnionFind &U) {
  if (T->sort() != Sort::Bool)
    return;
  switch (T->kind()) {
  case TermKind::And:
    for (const Term *Op : T->operands())
      walkConstraint(Op, Idx, Opts, U);
    return;
  case TermKind::Or: {
    std::vector<size_t> Vs;
    varIndicesOf(T, Idx, Vs);
    std::set<size_t> Distinct(Vs.begin(), Vs.end());
    if (Distinct.size() <= Opts.OrCouplingCap)
      uniteAll(U, Vs);
    for (const Term *Op : T->operands())
      walkConstraint(Op, Idx, Opts, U);
    return;
  }
  default: {
    // Atom (possibly negated) or an opaque boolean leaf: one group.
    std::vector<size_t> Vs;
    varIndicesOf(T, Idx, Vs);
    uniteAll(U, Vs);
    return;
  }
  }
}

/// Interaction edges contributed by one predicate application: variables
/// inside one compound argument interact, and the arguments of positions
/// already sharing a pack interact (pack-induced edges, which make the
/// decomposition a fixpoint across clauses).
void walkApp(const PredApp &App, const PredPacks &L, const ClauseVarMap &Idx,
             PackUnionFind &U) {
  std::vector<std::vector<size_t>> ArgVars(App.Args.size());
  for (size_t J = 0; J < App.Args.size(); ++J) {
    varIndicesOf(App.Args[J], Idx, ArgVars[J]);
    if (App.Args[J]->kind() != TermKind::Var)
      uniteAll(U, ArgVars[J]);
  }
  for (const std::vector<size_t> &Pack : L.Packs) {
    size_t Anchor = ~size_t(0);
    for (size_t J : Pack) {
      if (J >= ArgVars.size() || ArgVars[J].empty())
        continue;
      if (Anchor == ~size_t(0))
        Anchor = ArgVars[J][0];
      else
        U.unite(Anchor, ArgVars[J][0]);
    }
  }
}

std::shared_ptr<const PredPacks> packsFromUnionFind(const PackUnionFind &U,
                                                    size_t Arity) {
  auto L = std::make_shared<PredPacks>();
  L->Arity = Arity;
  L->PackOf.resize(Arity);
  std::map<size_t, size_t> RootPack;
  for (size_t J = 0; J < Arity; ++J) {
    size_t R = U.find(J);
    auto [It, New] = RootPack.try_emplace(R, L->Packs.size());
    if (New)
      L->Packs.emplace_back();
    L->PackOf[J] = It->second;
    L->Packs[It->second].push_back(J);
  }
  return L;
}

} // namespace

ClauseInteraction analysis::clauseInteraction(const HornClause &C,
                                              const PackDecomposition &Packs,
                                              const PackingOptions &Opts) {
  ClauseVarMap Idx;
  for (const PredApp &App : C.Body)
    for (const Term *Arg : App.Args)
      collectIntVars(Arg, Idx);
  if (C.HeadPred)
    for (const Term *Arg : C.HeadPred->Args)
      collectIntVars(Arg, Idx);
  collectIntVars(C.Constraint, Idx);
  // Query conclusions (`Body /\ Constraint -> HeadFormula`) constrain the
  // body state just like the clause constraint: the variables they relate
  // are exactly the directions a proof must track together.
  if (C.HeadFormula)
    collectIntVars(C.HeadFormula, Idx);

  ClauseInteraction Out{std::move(Idx), PackUnionFind(0)};
  Out.Classes = PackUnionFind(Out.Idx.size());
  walkConstraint(C.Constraint, Out.Idx, Opts, Out.Classes);
  if (C.HeadFormula)
    walkConstraint(C.HeadFormula, Out.Idx, Opts, Out.Classes);
  for (const PredApp &App : C.Body)
    walkApp(App, *Packs.Preds[App.Pred->Index], Out.Idx, Out.Classes);
  if (C.HeadPred)
    walkApp(*C.HeadPred, *Packs.Preds[C.HeadPred->Pred->Index], Out.Idx,
            Out.Classes);
  return Out;
}

PackDecomposition
analysis::computePackDecomposition(const ChcSystem &System,
                                   const std::vector<char> &LiveClause,
                                   const PackingOptions &Opts) {
  const auto &Preds = System.predicates();
  const auto &Clauses = System.clauses();

  std::vector<PackUnionFind> Pos;
  Pos.reserve(Preds.size());
  for (const Predicate *P : Preds)
    Pos.emplace_back(P->arity());

  PackDecomposition D;
  D.Preds.resize(Preds.size());

  auto Snapshot = [&]() {
    for (const Predicate *P : Preds)
      D.Preds[P->Index] = packsFromUnionFind(Pos[P->Index], P->arity());
  };

  if (!Opts.Enable) {
    for (const Predicate *P : Preds)
      for (size_t J = 1; J < P->arity(); ++J)
        Pos[P->Index].unite(0, J);
    Snapshot();
  } else {
    // Iterate to a fixpoint: pack-induced interaction edges feed position
    // merges, which feed new interaction edges in other clauses. Merges are
    // monotone, so this terminates; the iteration cap is belt and braces.
    bool Changed = true;
    for (size_t Iter = 0; Changed && Iter < 16; ++Iter) {
      Changed = false;
      Snapshot();
      for (size_t CI = 0; CI < Clauses.size(); ++CI) {
        if (!LiveClause.empty() && !LiveClause[CI])
          continue;
        const HornClause &C = Clauses[CI];
        ClauseInteraction In = clauseInteraction(C, D, Opts);
        auto Feed = [&](const PredApp &App) {
          PackUnionFind &U = Pos[App.Pred->Index];
          // Positions whose argument variables share an interaction class
          // belong in one pack (unless the size cap says otherwise).
          std::map<size_t, size_t> ClassPos; // class root -> witness position
          for (size_t J = 0; J < App.Args.size(); ++J) {
            std::vector<size_t> Vs;
            varIndicesOf(App.Args[J], In.Idx, Vs);
            for (size_t V : Vs) {
              size_t R = In.Classes.find(V);
              auto [It, New] = ClassPos.try_emplace(R, J);
              if (New)
                continue;
              size_t A = U.find(It->second), B = U.find(J);
              if (A == B)
                continue;
              if (U.size(A) + U.size(B) > Opts.MaxPackSize)
                continue; // cap: keep the packs apart, losing precision only
              U.unite(A, B);
              Changed = true;
            }
          }
        };
        for (const PredApp &App : C.Body)
          Feed(App);
        if (C.HeadPred)
          Feed(*C.HeadPred);
      }
    }
    Snapshot();
  }

  for (const auto &L : D.Preds) {
    D.PacksBuilt += L->packCount();
    for (const auto &Pack : L->Packs)
      D.LargestPack = std::max(D.LargestPack, Pack.size());
  }
  return D;
}

//===----------------------------------------------------------------------===//
// PackedOctagon
//===----------------------------------------------------------------------===//

PackedOctagon PackedOctagon::top(std::shared_ptr<const PredPacks> Layout) {
  PackedOctagon V;
  V.Layout = std::move(Layout);
  if (V.Layout)
    for (const auto &Pack : V.Layout->Packs)
      V.Os.emplace_back(Pack.size());
  return V;
}

PackedOctagon PackedOctagon::bottom(std::shared_ptr<const PredPacks> Layout) {
  PackedOctagon V;
  V.Layout = std::move(Layout);
  V.Bot = true;
  if (V.Layout)
    for (const auto &Pack : V.Layout->Packs)
      V.Os.push_back(Octagon::bottom(Pack.size()));
  return V;
}

bool PackedOctagon::isEmpty() const {
  if (Bot)
    return true;
  for (const Octagon &O : Os)
    if (O.isEmpty())
      return true;
  return false;
}

bool PackedOctagon::isTop() const {
  if (isEmpty())
    return false;
  for (const Octagon &O : Os)
    if (!O.isTop())
      return false;
  return true;
}

Interval PackedOctagon::boundOf(size_t I) const {
  if (isEmpty())
    return Interval::empty();
  assert(Layout && I < Layout->Arity);
  size_t K = Layout->PackOf[I];
  const auto &Members = Layout->Packs[K];
  size_t Local =
      std::lower_bound(Members.begin(), Members.end(), I) - Members.begin();
  return Os[K].boundOf(Local);
}

OctBound PackedOctagon::pairUpper(size_t I, bool NegI, size_t J,
                                  bool NegJ) const {
  if (isEmpty())
    return OctBound::of(Rational(-1)); // any negative bound: empty
  assert(Layout && I < Layout->Arity && J < Layout->Arity && I != J);
  size_t K = Layout->PackOf[I];
  if (Layout->PackOf[J] != K)
    return OctBound::inf(); // the relation packing gave up
  const auto &Members = Layout->Packs[K];
  size_t LI =
      std::lower_bound(Members.begin(), Members.end(), I) - Members.begin();
  size_t LJ =
      std::lower_bound(Members.begin(), Members.end(), J) - Members.begin();
  return Os[K].pairUpper(LI, NegI, LJ, NegJ);
}

void PackedOctagon::forEachConstraint(
    const std::function<void(const OctConstraint &)> &Fn) const {
  if (isEmpty())
    return;
  for (size_t K = 0; K < Os.size(); ++K) {
    const auto &Members = Layout->Packs[K];
    Os[K].forEachConstraint([&](const OctConstraint &C) {
      OctConstraint G = C;
      G.Var1 = Members[C.Var1];
      G.Var2 = C.Coef2 == 0 ? G.Var1 : Members[C.Var2];
      Fn(G);
    });
  }
}

PackedOctagon PackedOctagon::join(const PackedOctagon &O) const {
  if (isEmpty())
    return O;
  if (O.isEmpty())
    return *this;
  assert(Layout.get() == O.Layout.get() && "layout mismatch in join");
  PackedOctagon R = *this;
  for (size_t K = 0; K < Os.size(); ++K)
    R.Os[K] = Os[K].join(O.Os[K]);
  return R;
}

PackedOctagon PackedOctagon::meet(const PackedOctagon &O) const {
  if (isEmpty())
    return *this;
  if (O.isEmpty())
    return O;
  assert(Layout.get() == O.Layout.get() && "layout mismatch in meet");
  PackedOctagon R = *this;
  for (size_t K = 0; K < Os.size(); ++K)
    R.Os[K] = Os[K].meet(O.Os[K]);
  return R;
}

PackedOctagon PackedOctagon::widen(const PackedOctagon &Next) const {
  if (isEmpty())
    return Next;
  if (Next.isEmpty())
    return *this;
  assert(Layout.get() == Next.Layout.get() && "layout mismatch in widen");
  PackedOctagon R = *this;
  for (size_t K = 0; K < Os.size(); ++K)
    R.Os[K] = Os[K].widen(Next.Os[K]);
  return R;
}

bool PackedOctagon::operator==(const PackedOctagon &O) const {
  if (numVars() != O.numVars())
    return false;
  if (isEmpty() || O.isEmpty())
    return isEmpty() == O.isEmpty();
  for (size_t K = 0; K < Os.size(); ++K)
    if (Os[K] != O.Os[K])
      return false;
  return true;
}

size_t PackedOctagon::hash() const {
  if (isEmpty())
    return 0x9e3779b97f4a7c15ULL;
  size_t H = numVars();
  for (size_t K = 0; K < Os.size(); ++K)
    H = H * 1099511628211ULL ^ (Os[K].hash() + K);
  return H;
}

std::string PackedOctagon::toString() const {
  if (isEmpty())
    return "false";
  if (isTop())
    return "true";
  std::string Out;
  forEachConstraint([&](const OctConstraint &C) {
    if (!Out.empty())
      Out += " /\\ ";
    Out += (C.Coef1 < 0 ? "-x" : "x") + std::to_string(C.Var1);
    if (C.Coef2 != 0)
      Out += std::string(C.Coef2 < 0 ? " - x" : " + x") +
             std::to_string(C.Var2);
    Out += " <= " + C.Bound.toString();
  });
  return Out;
}
