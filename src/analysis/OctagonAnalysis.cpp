//===- analysis/OctagonAnalysis.cpp - Octagon domain over CHCs ------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/OctagonAnalysis.h"

#include "analysis/DomainCancellation.h"
#include "analysis/FixpointEngine.h"
#include "logic/LinearExpr.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

constexpr size_t NPOS = ~size_t(0);

/// Resolves clause variables to scratch-octagon dimensions. A variable with
/// no dimension — outside the pack's interaction scope, or retired by the
/// live-range window — resolves to nothing, and the caller drops the fact
/// (always sound: dropping constraints over-approximates).
struct DimResolver {
  const ClauseVarMap *Idx = nullptr;
  const std::vector<size_t> *DimOf = nullptr;

  std::optional<size_t> at(const Term *V) const {
    auto It = Idx->find(V);
    if (It == Idx->end())
      return std::nullopt;
    size_t D = (*DimOf)[It->second];
    if (D == NPOS)
      return std::nullopt;
    return D;
  }
};

/// One normalised linear constraint `sum Coef_i * dim_i + K <= 0` over
/// octagon dimensions (the dims are distinct by construction).
using LinCombo = std::vector<std::pair<size_t, Rational>>;

/// Conjoins `sum C + K <= 0` onto \p O: exactly when the combination is an
/// octagon constraint (<= 2 dims, equal magnitudes), otherwise through its
/// sound unary and pairwise interval consequences.
void applyLe(Octagon &O, const LinCombo &C, const Rational &K) {
  if (C.empty()) {
    if (K.signum() > 0)
      O.markEmpty();
    return;
  }
  if (C.size() == 1) {
    const auto &[D, A] = C[0];
    // A*x <= -K.
    Rational Bound = -K / A;
    if (A.signum() > 0)
      O.addUpper(D, Bound);
    else
      O.addLower(D, Bound);
    return;
  }
  if (C.size() == 2 && C[0].second.abs() == C[1].second.abs()) {
    Rational A = C[0].second.abs();
    O.addPair(C[0].first, C[0].second.isNegative(), C[1].first,
              C[1].second.isNegative(), -K / A);
    return;
  }
  // Not an octagon constraint. Derive consequences against a snapshot of
  // the current per-dimension intervals (sound: the snapshot is an
  // over-approximation of the store being refined).
  std::vector<Interval> B;
  B.reserve(C.size());
  for (const auto &[D, A] : C)
    B.push_back(O.boundOf(D));
  for (size_t I = 0; I < C.size(); ++I) {
    // Coef_I * x_I <= -K - sum_{J != I} Coef_J * x_J.
    Interval Rest = Interval::constant(-K);
    for (size_t J = 0; J < C.size(); ++J)
      if (J != I)
        Rest = Rest + B[J].scaled(-C[J].second);
    if (!Rest.hasHi())
      continue;
    Rational Bound = Rest.hi() / C[I].second;
    if (C[I].second.signum() > 0)
      O.addUpper(C[I].first, Bound);
    else
      O.addLower(C[I].first, Bound);
  }
  for (size_t I = 0; I < C.size(); ++I)
    for (size_t J = I + 1; J < C.size(); ++J) {
      if (C[I].second.abs() != C[J].second.abs())
        continue;
      Interval Rest = Interval::constant(-K);
      for (size_t L = 0; L < C.size(); ++L)
        if (L != I && L != J)
          Rest = Rest + B[L].scaled(-C[L].second);
      if (!Rest.hasHi())
        continue;
      O.addPair(C[I].first, C[I].second.isNegative(), C[J].first,
                C[J].second.isNegative(), Rest.hi() / C[I].second.abs());
    }
}

void applyEq(Octagon &O, const LinCombo &C, const Rational &K) {
  applyLe(O, C, K);
  LinCombo Neg = C;
  for (auto &[D, A] : Neg)
    A = -A;
  applyLe(O, Neg, -K);
}

/// Conjoins one linear atom `Expr REL 0` onto \p O. The expression is first
/// scaled by a positive factor making everything integral (never by the
/// sign-normalising `LinearExpr::normalizeIntegral`, which may flip the
/// relation), so `<` tightens to `<= -1`. Atoms mentioning an unresolved
/// variable are dropped.
void applyAtom(Octagon &O, const LinearAtom &Atom, const DimResolver &R) {
  Rational Scale(1);
  LinCombo C;
  C.reserve(Atom.Expr.coefficients().size());
  for (const auto &[Var, Coef] : Atom.Expr.coefficients()) {
    std::optional<size_t> D = R.at(Var);
    if (!D)
      return;
    C.emplace_back(*D, Coef);
    Scale *= Rational(Coef.denominator());
  }
  Scale *= Rational(Atom.Expr.constant().denominator());
  for (auto &[D, A] : C)
    A = A * Scale;
  Rational K = Atom.Expr.constant() * Scale;
  switch (Atom.Rel) {
  case LinRel::Le:
    applyLe(O, C, K);
    break;
  case LinRel::Lt:
    // Integral, so E < 0 is E <= -1.
    applyLe(O, C, K + Rational(1));
    break;
  case LinRel::Eq:
    applyEq(O, C, K);
    break;
  }
}

/// Conjoins a clause constraint onto \p O: conjunctions sequentially,
/// disjunctions by joining their branch octagons, negated inequality atoms
/// flipped, anything else conservatively ignored.
void applyConstraint(Octagon &O, const Term *T, const DimResolver &R) {
  if (T->sort() != Sort::Bool)
    return;
  switch (T->kind()) {
  case TermKind::BoolConst:
    if (!T->boolValue())
      O.markEmpty();
    return;
  case TermKind::And:
    for (const Term *Op : T->operands())
      applyConstraint(O, Op, R);
    return;
  case TermKind::Or: {
    std::optional<Octagon> Joined;
    for (const Term *Op : T->operands()) {
      Octagon Branch = O;
      applyConstraint(Branch, Op, R);
      if (Branch.isEmpty())
        continue;
      Joined = Joined ? Joined->join(Branch) : std::move(Branch);
    }
    if (Joined)
      O = std::move(*Joined);
    else
      O.markEmpty();
    return;
  }
  case TermKind::Le:
  case TermKind::Lt:
  case TermKind::Eq: {
    std::optional<LinearAtom> Atom = LinearAtom::fromTerm(T);
    if (Atom)
      applyAtom(O, *Atom, R);
    return;
  }
  case TermKind::Not: {
    std::optional<LinearAtom> Atom = LinearAtom::fromTerm(T->operand(0));
    if (Atom && Atom->Rel != LinRel::Eq)
      applyAtom(O, Atom->negated(), R);
    return;
  }
  default:
    return;
  }
}

/// Imports the facts of one body application's packed octagon into the
/// clause octagon; false when the application is infeasible outright.
bool importBodyApp(Octagon &O, const PredApp &App, const PackedOctagon &PO,
                   const DimResolver &R) {
  if (PO.isEmpty())
    return false;
  if (PO.isTop())
    return true;

  // Argument positions carried by a plain variable map straight to a
  // dimension; the octagonal facts among them transfer losslessly.
  std::vector<std::optional<size_t>> ArgDim(App.Args.size());
  for (size_t J = 0; J < App.Args.size(); ++J)
    if (App.Args[J]->kind() == TermKind::Var &&
        App.Args[J]->sort() == Sort::Int)
      ArgDim[J] = R.at(App.Args[J]);

  Rational Half(BigInt(1), BigInt(2));
  PO.forEachConstraint([&](const OctConstraint &F) {
    if (F.Coef2 == 0) {
      if (!ArgDim[F.Var1])
        return;
      if (F.Coef1 > 0)
        O.addUpper(*ArgDim[F.Var1], F.Bound);
      else
        O.addLower(*ArgDim[F.Var1], -F.Bound);
      return;
    }
    if (!ArgDim[F.Var1] || !ArgDim[F.Var2])
      return;
    size_t D1 = *ArgDim[F.Var1], D2 = *ArgDim[F.Var2];
    if (D1 != D2) {
      O.addPair(D1, F.Coef1 < 0, D2, F.Coef2 < 0, F.Bound);
      return;
    }
    // Both argument positions carry the same clause variable.
    int Sum = F.Coef1 + F.Coef2;
    if (Sum == 0) {
      if (F.Bound.isNegative())
        O.markEmpty();
    } else if (Sum > 0) {
      O.addUpper(D1, F.Bound * Half);
    } else {
      O.addLower(D1, -(F.Bound * Half));
    }
  });

  // Non-variable argument terms: relate through the argument's interval.
  for (size_t J = 0; J < App.Args.size(); ++J) {
    if (ArgDim[J])
      continue;
    if (App.Args[J]->kind() == TermKind::Var)
      continue; // out-of-scope variable: no refinement, no feasibility check
    Interval AI = PO.boundOf(J);
    if (AI.isTop())
      continue;
    std::optional<LinearExpr> LE = LinearExpr::fromTerm(App.Args[J]);
    if (!LE)
      continue;
    if (LE->isConstant()) {
      if (!AI.contains(LE->constant()))
        return false;
      continue;
    }
    Interval Shifted = AI + Interval::constant(-LE->constant());
    if (LE->coefficients().size() == 1) {
      // Coeff*V + b in AI  ==>  V in (AI - b) / Coeff.
      const auto &[Var, Coef] = *LE->coefficients().begin();
      Interval VI = Shifted.scaled(Coef.inverse()).tightenIntegral();
      if (VI.isEmpty())
        return false;
      std::optional<size_t> D = R.at(Var);
      if (!D)
        continue;
      if (VI.hasLo())
        O.addLower(*D, VI.lo());
      if (VI.hasHi())
        O.addUpper(*D, VI.hi());
      continue;
    }
    if (LE->coefficients().size() == 2) {
      auto It = LE->coefficients().begin();
      const auto &[V1, A1] = *It;
      const auto &[V2, A2] = *std::next(It);
      if (A1.abs() != A2.abs())
        continue;
      std::optional<size_t> D1 = R.at(V1), D2 = R.at(V2);
      if (!D1 || !D2)
        continue;
      // a*(s1*V1 + s2*V2) + b in AI, a = |A1| > 0.
      Interval PI = Shifted.scaled(A1.abs().inverse());
      bool N1 = A1.isNegative(), N2 = A2.isNegative();
      if (PI.hasHi())
        O.addPair(*D1, N1, *D2, N2, PI.hi());
      if (PI.hasLo())
        O.addPair(*D1, !N1, *D2, !N2, -PI.lo());
    }
    // Wider argument terms: no backward refinement (sound).
  }
  return true;
}

/// The finite bound the unary facts alone place on the signed variable
/// `±x_I` (the `Neg` flag selects the sign), as an OctBound.
OctBound unarySigned(const Octagon &O, size_t I, bool Neg) {
  Interval B = O.boundOf(I);
  if (!Neg)
    return B.hasHi() ? OctBound::of(B.hi()) : OctBound::inf();
  return B.hasLo() ? OctBound::of(-B.lo()) : OctBound::inf();
}

/// Visits every pairwise fact strictly tighter than its unary-implied bound
/// (the genuinely relational content of the octagon).
template <class Fn> void forEachRelationalFact(const Octagon &O, Fn F) {
  if (O.isEmpty())
    return;
  const int Signs[2] = {+1, -1};
  for (size_t I = 0; I < O.numVars(); ++I)
    for (size_t J = I + 1; J < O.numVars(); ++J)
      for (int SI : Signs)
        for (int SJ : Signs) {
          OctBound B = O.pairUpper(I, SI < 0, J, SJ < 0);
          if (!B.Finite)
            continue;
          OctBound Implied =
              unarySigned(O, I, SI < 0) + unarySigned(O, J, SJ < 0);
          if (Implied.Finite && Implied.B <= B.B)
            continue;
          F(I, SI, J, SJ, B.B);
        }
}

/// Appends the ids (under \p Idx) of every Int variable below \p T.
void collectVarIds(const Term *T, const ClauseVarMap &Idx,
                   std::vector<size_t> &Out) {
  if (T->kind() == TermKind::Var) {
    if (T->sort() == Sort::Int)
      Out.push_back(Idx.at(T));
    return;
  }
  for (const Term *Op : T->operands())
    collectVarIds(Op, Idx, Out);
}

void flattenAnd(const Term *T, std::vector<const Term *> &Out) {
  if (T->kind() == TermKind::And) {
    for (const Term *Op : T->operands())
      flattenAnd(Op, Out);
    return;
  }
  Out.push_back(T);
}

} // namespace

namespace la::analysis {

/// One scheduled action of a per-pack transfer: a body-app import, one
/// top-level conjunct of the clause constraint, or one head-slot equation.
struct OctStepPlan {
  enum Kind : unsigned char { Import, Conjunct, SlotEq };
  Kind K = Import;
  /// Body-app index / conjunct index / member ordinal, by kind.
  size_t Index = 0;
  /// In-scope clause-variable ids the step reads or writes, sorted.
  std::vector<size_t> Vars;
};

/// The precomputed transfer schedule of one (clause, head pack): which
/// clause variables are in scope, in which order the steps run, each
/// variable's last use (for the live-range window), and which body-pred
/// packs feed the memoization hash.
struct OctPackPlan {
  size_t PackId = 0;
  /// False for the feasibility-only pseudo-plan of a pack-less (nullary)
  /// head: the transfer result is discarded, only infeasibility matters.
  bool HasPack = true;
  std::vector<size_t> Members; ///< head positions of the pack, ascending
  std::vector<char> Active;    ///< clause-var id -> in scope
  size_t ActiveCount = 0;
  /// Live-range windowing on; off, every in-scope variable keeps one
  /// dimension for the whole clause and the constraint applies twice (the
  /// historical monolithic behavior, kept for precision on small clauses).
  bool Windowed = false;
  size_t WindowDims = 0; ///< scratch dims beyond the head slots
  std::vector<OctStepPlan> Steps;
  std::vector<size_t> LastUse; ///< var id -> last step index using it
  /// Per body app: pack ids of the body predicate whose octagons can affect
  /// this transfer (the memoization hash covers exactly these).
  std::vector<std::vector<size_t>> AppHashPacks;
  const struct OctClausePlan *Parent = nullptr;
};

/// The per-clause transfer plan: the shared variable numbering and
/// interaction classes, the flattened constraint conjuncts, and one
/// `OctPackPlan` per head pack.
struct OctClausePlan {
  explicit OctClausePlan(ClauseInteraction In) : CI(std::move(In)) {}

  ClauseInteraction CI;
  std::vector<const Term *> Conjuncts;
  std::vector<OctPackPlan> PackPlans;
};

struct OctagonDomain::PlanStore {
  std::unordered_map<const chc::HornClause *, std::unique_ptr<OctClausePlan>>
      Map;
};

} // namespace la::analysis

namespace {

/// Sorted unique in-scope var ids below \p T; \p HasInt (when asked for)
/// reports whether any Int variable occurs at all, in or out of scope.
std::vector<size_t> activeVarsOf(const Term *T, const ClauseVarMap &Idx,
                                 const std::vector<char> &Active,
                                 bool *HasInt = nullptr) {
  std::vector<size_t> All;
  collectVarIds(T, Idx, All);
  if (HasInt)
    *HasInt = !All.empty();
  std::vector<size_t> Out;
  Out.reserve(All.size());
  for (size_t V : All)
    if (Active[V])
      Out.push_back(V);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

OctPackPlan buildPackPlan(const HornClause &C, const OctClausePlan &Plan,
                          const PackDecomposition &Packs,
                          const PackingOptions &Opts, size_t PackId,
                          bool HasPack) {
  const ClauseVarMap &Idx = Plan.CI.Idx;
  size_t NumVars = Idx.size();
  const PredPacks &HL = *Packs.Preds[C.HeadPred->Pred->Index];

  OctPackPlan PP;
  PP.PackId = PackId;
  PP.HasPack = HasPack;
  if (HasPack)
    PP.Members = HL.Packs[PackId];

  // Scope: the interaction classes seeded by the head arguments at the
  // pack's positions. With packing disabled (and for the nullary
  // pseudo-plan) every clause variable stays in scope, reproducing the
  // monolithic transfer — including its clause-infeasibility detection over
  // head-disconnected variables.
  if (!Opts.Enable || !HasPack) {
    PP.Active.assign(NumVars, 1);
    PP.ActiveCount = NumVars;
  } else {
    PP.Active.assign(NumVars, 0);
    std::set<size_t> Seeds;
    std::vector<size_t> Vs;
    for (size_t P : PP.Members) {
      Vs.clear();
      collectVarIds(C.HeadPred->Args[P], Idx, Vs);
      for (size_t V : Vs)
        Seeds.insert(Plan.CI.Classes.find(V));
    }
    for (size_t V = 0; V < NumVars; ++V)
      if (Seeds.count(Plan.CI.Classes.find(V))) {
        PP.Active[V] = 1;
        ++PP.ActiveCount;
      }
  }

  size_t MaxStepVars = 0;
  auto AddStep = [&](OctStepPlan::Kind K, size_t Index,
                     std::vector<size_t> Vars) {
    MaxStepVars = std::max(MaxStepVars, Vars.size());
    PP.Steps.push_back(OctStepPlan{K, Index, std::move(Vars)});
  };

  for (size_t A = 0; A < C.Body.size(); ++A) {
    std::vector<size_t> Vs;
    for (const Term *Arg : C.Body[A].Args)
      collectVarIds(Arg, Idx, Vs);
    std::vector<size_t> Act;
    for (size_t V : Vs)
      if (PP.Active[V])
        Act.push_back(V);
    std::sort(Act.begin(), Act.end());
    Act.erase(std::unique(Act.begin(), Act.end()), Act.end());
    AddStep(OctStepPlan::Import, A, std::move(Act));
  }
  for (size_t CJ = 0; CJ < Plan.Conjuncts.size(); ++CJ) {
    bool HasInt = false;
    std::vector<size_t> Vs =
        activeVarsOf(Plan.Conjuncts[CJ], Idx, PP.Active, &HasInt);
    // Conjuncts over out-of-scope variables only are skipped; variable-free
    // conjuncts (a ground `false`) must always apply.
    if (!Vs.empty() || !HasInt)
      AddStep(OctStepPlan::Conjunct, CJ, std::move(Vs));
  }
  for (size_t J = 0; J < PP.Members.size(); ++J)
    AddStep(OctStepPlan::SlotEq, J,
            activeVarsOf(C.HeadPred->Args[PP.Members[J]], Idx, PP.Active));

  PP.Windowed = Opts.Enable && PP.ActiveCount > Opts.WindowThreshold;
  PP.LastUse.assign(NumVars, 0);
  if (!PP.Windowed) {
    PP.WindowDims = PP.ActiveCount;
  } else {
    std::vector<size_t> First(NumVars, NPOS);
    for (size_t T = 0; T < PP.Steps.size(); ++T)
      for (size_t V : PP.Steps[T].Vars) {
        if (First[V] == NPOS)
          First[V] = T;
        PP.LastUse[V] = T;
      }
    // The peak of the live-range intervals bounds how many dimensions the
    // window ever needs; `MaxWindowVars` caps it (overflow evicts).
    std::vector<ptrdiff_t> Delta(PP.Steps.size() + 1, 0);
    for (size_t V = 0; V < NumVars; ++V)
      if (First[V] != NPOS) {
        ++Delta[First[V]];
        --Delta[PP.LastUse[V] + 1];
      }
    size_t Peak = 0;
    ptrdiff_t Live = 0;
    for (size_t T = 0; T < PP.Steps.size(); ++T) {
      Live += Delta[T];
      Peak = std::max(Peak, static_cast<size_t>(Live));
    }
    PP.WindowDims = std::max(MaxStepVars, std::min(Peak, Opts.MaxWindowVars));
  }

  PP.AppHashPacks.resize(C.Body.size());
  for (size_t A = 0; A < C.Body.size(); ++A) {
    const PredApp &App = C.Body[A];
    const PredPacks &BL = *Packs.Preds[App.Pred->Index];
    std::set<size_t> Rel;
    for (size_t J = 0; J < App.Args.size() && J < BL.PackOf.size(); ++J) {
      const Term *Arg = App.Args[J];
      bool Relevant;
      if (Arg->kind() == TermKind::Var) {
        auto It = Idx.find(Arg);
        Relevant = It != Idx.end() && PP.Active[It->second];
      } else {
        // Constant and compound arguments feed feasibility checks through
        // the position's interval regardless of scope, so their packs are
        // always inputs.
        Relevant = true;
      }
      if (Relevant)
        Rel.insert(BL.PackOf[J]);
    }
    PP.AppHashPacks[A].assign(Rel.begin(), Rel.end());
  }
  return PP;
}

std::unique_ptr<OctClausePlan> buildClausePlan(const HornClause &C,
                                               const PackDecomposition &Packs,
                                               const PackingOptions &Opts) {
  auto Plan =
      std::make_unique<OctClausePlan>(clauseInteraction(C, Packs, Opts));
  flattenAnd(C.Constraint, Plan->Conjuncts);
  const PredPacks &HL = *Packs.Preds[C.HeadPred->Pred->Index];
  if (HL.packCount() == 0) {
    // Nullary head: no packs to fill, but the clause can still be
    // infeasible, which the old monolithic transfer detected. Keep that
    // with a feasibility-only pseudo-plan.
    Plan->PackPlans.push_back(buildPackPlan(C, *Plan, Packs, Opts, 0, false));
  } else {
    for (size_t K = 0; K < HL.packCount(); ++K)
      Plan->PackPlans.push_back(buildPackPlan(C, *Plan, Packs, Opts, K, true));
  }
  for (OctPackPlan &PP : Plan->PackPlans)
    PP.Parent = Plan.get();
  return Plan;
}

/// Fingerprint of everything that can influence one per-pack transfer: the
/// body states' reachability/emptiness and the relevant input packs'
/// canonical octagons. A collision replays a stale output — a candidate
/// precision loss only, since the verify pass re-proves every invariant.
size_t hashPackInputs(const HornClause &C, const OctPackPlan &PP,
                      const std::vector<DomainPredState<PackedOctagon>>
                          &States) {
  size_t H = 0x9e3779b97f4a7c15ULL;
  for (size_t A = 0; A < C.Body.size(); ++A) {
    const DomainPredState<PackedOctagon> &S = States[C.Body[A].Pred->Index];
    H = H * 1099511628211ULL ^ (S.Reachable ? 2 : 1);
    if (!S.Reachable)
      continue;
    bool Empty = S.Value.isEmpty();
    H = H * 1099511628211ULL ^ (Empty ? 5 : 3);
    if (Empty)
      continue;
    for (size_t L : PP.AppHashPacks[A])
      H = H * 1099511628211ULL ^ S.Value.pack(L).hash();
  }
  return H;
}

} // namespace

OctagonDomain::OctagonDomain(const PackDecomposition &Decomp,
                             const PackingOptions &Opts,
                             OctTransferCache *Xfer)
    : Packs(&Decomp), PackOpts(Opts), Cache(Xfer),
      Plans(std::make_shared<PlanStore>()) {}

std::optional<Octagon>
OctagonDomain::transferPack(const HornClause &C, const OctPackPlan &PP,
                            const std::vector<DomainPredState<Value>> &States)
    const {
  const OctClausePlan &Plan = *PP.Parent;
  const ClauseVarMap &Idx = Plan.CI.Idx;
  size_t NumVars = Idx.size();
  size_t S = PP.Members.size();
  size_t Total = S + PP.WindowDims;

  // Slots for the head arguments occupy dims [0, S); clause variables live
  // in [S, Total), permanently (monolithic path) or windowed.
  Octagon O(Total);
  std::vector<size_t> DimOf(NumVars, NPOS);
  DimResolver R{&Idx, &DimOf};

  auto Apply = [&](const OctStepPlan &St) -> bool {
    switch (St.K) {
    case OctStepPlan::Import:
      if (!importBodyApp(O, C.Body[St.Index],
                         States[C.Body[St.Index].Pred->Index].Value, R))
        return false;
      break;
    case OctStepPlan::Conjunct:
      applyConstraint(O, Plan.Conjuncts[St.Index], R);
      break;
    case OctStepPlan::SlotEq: {
      size_t J = St.Index;
      std::optional<LinearExpr> LE =
          LinearExpr::fromTerm(C.HeadPred->Args[PP.Members[J]]);
      if (!LE)
        break; // e.g. Mod: the slot stays unconstrained
      // slot_J - Expr = 0.
      LinCombo Combo;
      Combo.emplace_back(J, Rational(1));
      bool Resolved = true;
      for (const auto &[Var, Coef] : LE->coefficients()) {
        std::optional<size_t> D = R.at(Var);
        if (!D) {
          Resolved = false;
          break;
        }
        Combo.emplace_back(*D, -Coef);
      }
      if (Resolved)
        applyEq(O, Combo, -LE->constant());
      break;
    }
    }
    return !O.isEmpty();
  };

  if (!PP.Windowed) {
    // Monolithic-parity path: permanent dimensions, two constraint rounds
    // (so information discovered late reaches earlier conjuncts), slots
    // equated last — the historical single-DBM transfer.
    size_t Next = S;
    for (size_t V = 0; V < NumVars; ++V)
      if (PP.Active[V])
        DimOf[V] = Next++;
    for (const OctStepPlan &St : PP.Steps)
      if (St.K == OctStepPlan::Import && !Apply(St))
        return std::nullopt;
    for (int Round = 0; Round < 2; ++Round)
      for (const OctStepPlan &St : PP.Steps)
        if (St.K == OctStepPlan::Conjunct && !Apply(St))
          return std::nullopt;
    for (const OctStepPlan &St : PP.Steps)
      if (St.K == OctStepPlan::SlotEq && !Apply(St))
        return std::nullopt;
  } else {
    // Windowed path: a dimension enters at a variable's first use and is
    // existentially forgotten after its last one, so each closure runs over
    // the live window instead of the whole clause. Single constraint round:
    // on the wide clauses that reach this path the second round used to
    // cost more than the whole analysis budget.
    std::vector<size_t> VarAt(Total, NPOS);
    std::vector<size_t> Free;
    for (size_t D = Total; D-- > S;)
      Free.push_back(D);

    auto Ensure = [&](size_t V, const std::vector<size_t> &Cur) {
      if (DimOf[V] != NPOS)
        return;
      size_t D = NPOS;
      if (!Free.empty()) {
        D = Free.back();
        Free.pop_back();
      } else {
        // Window overflow: evict the occupant whose last use is farthest
        // away (never one the current step needs). Forgetting a dimension
        // only loses facts, so this stays sound.
        size_t BestLast = 0;
        for (size_t E = S; E < Total; ++E) {
          size_t W = VarAt[E];
          if (std::binary_search(Cur.begin(), Cur.end(), W))
            continue;
          if (D == NPOS || PP.LastUse[W] >= BestLast) {
            D = E;
            BestLast = PP.LastUse[W];
          }
        }
        if (D == NPOS)
          return; // every dimension pinned by this step; stay unresolved
        O.forget(D);
        DimOf[VarAt[D]] = NPOS;
      }
      VarAt[D] = V;
      DimOf[V] = D;
    };

    for (size_t T = 0; T < PP.Steps.size(); ++T) {
      const OctStepPlan &St = PP.Steps[T];
      for (size_t V : St.Vars)
        Ensure(V, St.Vars);
      if (!Apply(St))
        return std::nullopt;
      for (size_t V : St.Vars)
        if (PP.LastUse[V] == T && DimOf[V] != NPOS) {
          size_t D = DimOf[V];
          O.forget(D);
          VarAt[D] = NPOS;
          Free.push_back(D);
          DimOf[V] = NPOS;
        }
    }
  }

  std::vector<size_t> Slots(S);
  std::iota(Slots.begin(), Slots.end(), 0);
  Octagon Res = O.project(Slots);
  if (Res.isEmpty())
    return std::nullopt;
  return Res;
}

std::optional<OctagonDomain::Value>
OctagonDomain::transfer(const HornClause &C,
                        const std::vector<DomainPredState<Value>> &States)
    const {
  assert(Packs && "transfer needs the pack-aware constructor");
  for (const PredApp &App : C.Body)
    if (!States[App.Pred->Index].Reachable)
      return std::nullopt;

  std::unique_ptr<OctClausePlan> &Slot = Plans->Map[&C];
  if (!Slot)
    Slot = buildClausePlan(C, *Packs, PackOpts);
  const OctClausePlan &Plan = *Slot;

  Value Out = PackedOctagon::top(Packs->Preds[C.HeadPred->Pred->Index]);
  for (const OctPackPlan &PP : Plan.PackPlans) {
    size_t InHash = 0;
    if (Cache) {
      InHash = hashPackInputs(C, PP, States);
      auto It = Cache->Map.find({&C, PP.PackId});
      if (It != Cache->Map.end() && It->second.InHash == InHash) {
        ++Cache->Hits;
        if (!It->second.Feasible)
          return std::nullopt;
        if (PP.HasPack)
          Out.pack(PP.PackId) = It->second.Out;
        continue;
      }
      ++Cache->Misses;
    }
    std::optional<Octagon> R = transferPack(C, PP, States);
    // A transfer interrupted by cancellation is sound but not canonical;
    // never memoize it.
    if (Cache && !DomainCancelScope::cancelled())
      Cache->Map[{&C, PP.PackId}] =
          OctTransferCache::Entry{InHash, R.has_value(), R ? *R : Octagon()};
    if (!R)
      return std::nullopt;
    if (PP.HasPack)
      Out.pack(PP.PackId) = std::move(*R);
  }
  return Out;
}

bool OctagonDomain::join(Value &Into, const Value &From) const {
  Value Joined = Into.join(From);
  if (Joined == Into)
    return false;
  Into = std::move(Joined);
  return true;
}

void OctagonDomain::widen(Value &Into, const Value &Joined) const {
  Into = Into.widen(Joined);
}

bool OctagonDomain::narrow(Value &Into, const Value &Step) const {
  Value M = Into.meet(Step);
  if (M.isEmpty() || M == Into)
    return false;
  Into = std::move(M);
  return true;
}

const Term *OctagonDomain::toInvariant(TermManager &TM, const Predicate *P,
                                       const Value &V) const {
  if (V.isEmpty())
    return TM.mkFalse();
  std::vector<const Term *> Conj;
  for (size_t I = 0; I < V.numVars(); ++I) {
    Interval B = V.boundOf(I);
    if (B.hasLo())
      Conj.push_back(TM.mkGe(P->Params[I], TM.mkIntConst(B.lo())));
    if (B.hasHi())
      Conj.push_back(TM.mkLe(P->Params[I], TM.mkIntConst(B.hi())));
  }
  const PredPacks *L = V.layout();
  for (size_t K = 0; L && K < V.packCount(); ++K) {
    const std::vector<size_t> &Members = L->Packs[K];
    forEachRelationalFact(
        V.pack(K),
        [&](size_t I, int SI, size_t J, int SJ, const Rational &Bound) {
          const Term *TI =
              SI < 0 ? TM.mkNeg(P->Params[Members[I]]) : P->Params[Members[I]];
          const Term *TJ =
              SJ < 0 ? TM.mkNeg(P->Params[Members[J]]) : P->Params[Members[J]];
          Conj.push_back(TM.mkLe(TM.mkAdd(TI, TJ), TM.mkIntConst(Bound)));
        });
  }
  if (Conj.empty())
    return TM.mkTrue(); // unreachable behind the isTop gate
  return TM.mkAnd(std::move(Conj));
}

size_t OctagonDomain::relationalFactCount(const PackedOctagon &O) {
  if (O.isEmpty())
    return 0;
  size_t N = 0;
  for (size_t K = 0; K < O.packCount(); ++K)
    forEachRelationalFact(O.pack(K),
                          [&](size_t, int, size_t, int, const Rational &) {
                            ++N;
                          });
  return N;
}

std::vector<OctagonState>
analysis::runOctagonAnalysis(const AnalysisContext &Ctx,
                             FixpointTelemetry *Telemetry) {
  // The octagon strong closure polls the installed token and deadline at
  // its loop head, so a large DBM closure can stall neither portfolio
  // cancellation nor the analysis time budget.
  DomainCancelScope Scope(Ctx.Opts.Smt.Cancel, &Ctx.Clock);
  OctagonDomain Dom(Ctx.packs(), Ctx.Opts.Packs, &Ctx.OctXfer);
  return runDomainAnalysis(Dom, Ctx, Ctx.Opts.Octagons, Telemetry);
}

const Term *analysis::octagonInvariant(TermManager &TM, const Predicate *P,
                                       const OctagonState &State) {
  return domainInvariant(OctagonDomain(), TM, P, State);
}
