//===- analysis/OctagonAnalysis.cpp - Octagon domain over CHCs ------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/OctagonAnalysis.h"

#include "analysis/DomainCancellation.h"
#include "analysis/FixpointEngine.h"
#include "logic/LinearExpr.h"

#include <map>
#include <numeric>
#include <optional>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

/// Clause-variable numbering: every distinct Int variable of the clause gets
/// one octagon dimension, in discovery order.
using VarMap = std::map<const Term *, size_t, TermIdLess>;

void collectVars(const Term *T, VarMap &Idx) {
  if (T->kind() == TermKind::Var) {
    if (T->sort() == Sort::Int && !Idx.count(T))
      Idx.emplace(T, Idx.size());
    return;
  }
  for (const Term *Op : T->operands())
    collectVars(Op, Idx);
}

/// One normalised linear constraint `sum Coef_i * dim_i + K <= 0` over
/// octagon dimensions (the dims are distinct by construction).
using LinCombo = std::vector<std::pair<size_t, Rational>>;

/// Conjoins `sum C + K <= 0` onto \p O: exactly when the combination is an
/// octagon constraint (<= 2 dims, equal magnitudes), otherwise through its
/// sound unary and pairwise interval consequences.
void applyLe(Octagon &O, const LinCombo &C, const Rational &K) {
  if (C.empty()) {
    if (K.signum() > 0)
      O.markEmpty();
    return;
  }
  if (C.size() == 1) {
    const auto &[D, A] = C[0];
    // A*x <= -K.
    Rational Bound = -K / A;
    if (A.signum() > 0)
      O.addUpper(D, Bound);
    else
      O.addLower(D, Bound);
    return;
  }
  if (C.size() == 2 && C[0].second.abs() == C[1].second.abs()) {
    Rational A = C[0].second.abs();
    O.addPair(C[0].first, C[0].second.isNegative(), C[1].first,
              C[1].second.isNegative(), -K / A);
    return;
  }
  // Not an octagon constraint. Derive consequences against a snapshot of
  // the current per-dimension intervals (sound: the snapshot is an
  // over-approximation of the store being refined).
  std::vector<Interval> B;
  B.reserve(C.size());
  for (const auto &[D, A] : C)
    B.push_back(O.boundOf(D));
  for (size_t I = 0; I < C.size(); ++I) {
    // Coef_I * x_I <= -K - sum_{J != I} Coef_J * x_J.
    Interval Rest = Interval::constant(-K);
    for (size_t J = 0; J < C.size(); ++J)
      if (J != I)
        Rest = Rest + B[J].scaled(-C[J].second);
    if (!Rest.hasHi())
      continue;
    Rational Bound = Rest.hi() / C[I].second;
    if (C[I].second.signum() > 0)
      O.addUpper(C[I].first, Bound);
    else
      O.addLower(C[I].first, Bound);
  }
  for (size_t I = 0; I < C.size(); ++I)
    for (size_t J = I + 1; J < C.size(); ++J) {
      if (C[I].second.abs() != C[J].second.abs())
        continue;
      Interval Rest = Interval::constant(-K);
      for (size_t L = 0; L < C.size(); ++L)
        if (L != I && L != J)
          Rest = Rest + B[L].scaled(-C[L].second);
      if (!Rest.hasHi())
        continue;
      O.addPair(C[I].first, C[I].second.isNegative(), C[J].first,
                C[J].second.isNegative(), Rest.hi() / C[I].second.abs());
    }
}

void applyEq(Octagon &O, const LinCombo &C, const Rational &K) {
  applyLe(O, C, K);
  LinCombo Neg = C;
  for (auto &[D, A] : Neg)
    A = -A;
  applyLe(O, Neg, -K);
}

/// Conjoins one linear atom `Expr REL 0` onto \p O. The expression is first
/// scaled by a positive factor making everything integral (never by the
/// sign-normalising `LinearExpr::normalizeIntegral`, which may flip the
/// relation), so `<` tightens to `<= -1`.
void applyAtom(Octagon &O, const LinearAtom &Atom, const VarMap &Idx) {
  Rational Scale(1);
  for (const auto &[Var, Coef] : Atom.Expr.coefficients())
    Scale *= Rational(Coef.denominator());
  Scale *= Rational(Atom.Expr.constant().denominator());
  LinCombo C;
  C.reserve(Atom.Expr.coefficients().size());
  for (const auto &[Var, Coef] : Atom.Expr.coefficients())
    C.emplace_back(Idx.at(Var), Coef * Scale);
  Rational K = Atom.Expr.constant() * Scale;
  switch (Atom.Rel) {
  case LinRel::Le:
    applyLe(O, C, K);
    break;
  case LinRel::Lt:
    // Integral, so E < 0 is E <= -1.
    applyLe(O, C, K + Rational(1));
    break;
  case LinRel::Eq:
    applyEq(O, C, K);
    break;
  }
}

/// Conjoins a clause constraint onto \p O: conjunctions sequentially,
/// disjunctions by joining their branch octagons, negated inequality atoms
/// flipped, anything else conservatively ignored.
void applyConstraint(Octagon &O, const Term *T, const VarMap &Idx) {
  if (T->sort() != Sort::Bool)
    return;
  switch (T->kind()) {
  case TermKind::BoolConst:
    if (!T->boolValue())
      O.markEmpty();
    return;
  case TermKind::And:
    for (const Term *Op : T->operands())
      applyConstraint(O, Op, Idx);
    return;
  case TermKind::Or: {
    std::optional<Octagon> Joined;
    for (const Term *Op : T->operands()) {
      Octagon Branch = O;
      applyConstraint(Branch, Op, Idx);
      if (Branch.isEmpty())
        continue;
      Joined = Joined ? Joined->join(Branch) : std::move(Branch);
    }
    if (Joined)
      O = std::move(*Joined);
    else
      O.markEmpty();
    return;
  }
  case TermKind::Le:
  case TermKind::Lt:
  case TermKind::Eq: {
    std::optional<LinearAtom> Atom = LinearAtom::fromTerm(T);
    if (Atom)
      applyAtom(O, *Atom, Idx);
    return;
  }
  case TermKind::Not: {
    std::optional<LinearAtom> Atom = LinearAtom::fromTerm(T->operand(0));
    if (Atom && Atom->Rel != LinRel::Eq)
      applyAtom(O, Atom->negated(), Idx);
    return;
  }
  default:
    return;
  }
}

/// Imports the facts of one body application's octagon into the clause
/// octagon; false when the application is infeasible outright.
bool importBodyApp(Octagon &O, const PredApp &App, const Octagon &PO,
                   const VarMap &Idx) {
  if (PO.isEmpty())
    return false;
  if (PO.isTop())
    return true;

  // Argument positions carried by a plain variable map straight to a
  // dimension; the octagonal facts among them transfer losslessly.
  std::vector<std::optional<size_t>> ArgDim(App.Args.size());
  for (size_t J = 0; J < App.Args.size(); ++J)
    if (App.Args[J]->kind() == TermKind::Var &&
        App.Args[J]->sort() == Sort::Int)
      ArgDim[J] = Idx.at(App.Args[J]);

  Rational Half(BigInt(1), BigInt(2));
  PO.forEachConstraint([&](const OctConstraint &F) {
    if (F.Coef2 == 0) {
      if (!ArgDim[F.Var1])
        return;
      if (F.Coef1 > 0)
        O.addUpper(*ArgDim[F.Var1], F.Bound);
      else
        O.addLower(*ArgDim[F.Var1], -F.Bound);
      return;
    }
    if (!ArgDim[F.Var1] || !ArgDim[F.Var2])
      return;
    size_t D1 = *ArgDim[F.Var1], D2 = *ArgDim[F.Var2];
    if (D1 != D2) {
      O.addPair(D1, F.Coef1 < 0, D2, F.Coef2 < 0, F.Bound);
      return;
    }
    // Both argument positions carry the same clause variable.
    int Sum = F.Coef1 + F.Coef2;
    if (Sum == 0) {
      if (F.Bound.isNegative())
        O.markEmpty();
    } else if (Sum > 0) {
      O.addUpper(D1, F.Bound * Half);
    } else {
      O.addLower(D1, -(F.Bound * Half));
    }
  });

  // Non-variable argument terms: relate through the argument's interval.
  for (size_t J = 0; J < App.Args.size(); ++J) {
    if (ArgDim[J])
      continue;
    Interval AI = PO.boundOf(J);
    if (AI.isTop())
      continue;
    std::optional<LinearExpr> LE = LinearExpr::fromTerm(App.Args[J]);
    if (!LE)
      continue;
    if (LE->isConstant()) {
      if (!AI.contains(LE->constant()))
        return false;
      continue;
    }
    Interval Shifted = AI + Interval::constant(-LE->constant());
    if (LE->coefficients().size() == 1) {
      // Coeff*V + b in AI  ==>  V in (AI - b) / Coeff.
      const auto &[Var, Coef] = *LE->coefficients().begin();
      Interval VI = Shifted.scaled(Coef.inverse()).tightenIntegral();
      if (VI.isEmpty())
        return false;
      size_t D = Idx.at(Var);
      if (VI.hasLo())
        O.addLower(D, VI.lo());
      if (VI.hasHi())
        O.addUpper(D, VI.hi());
      continue;
    }
    if (LE->coefficients().size() == 2) {
      auto It = LE->coefficients().begin();
      const auto &[V1, A1] = *It;
      const auto &[V2, A2] = *std::next(It);
      if (A1.abs() != A2.abs())
        continue;
      // a*(s1*V1 + s2*V2) + b in AI, a = |A1| > 0.
      Interval PI = Shifted.scaled(A1.abs().inverse());
      size_t D1 = Idx.at(V1), D2 = Idx.at(V2);
      bool N1 = A1.isNegative(), N2 = A2.isNegative();
      if (PI.hasHi())
        O.addPair(D1, N1, D2, N2, PI.hi());
      if (PI.hasLo())
        O.addPair(D1, !N1, D2, !N2, -PI.lo());
    }
    // Wider argument terms: no backward refinement (sound).
  }
  return true;
}

/// The finite bound the unary facts alone place on the signed variable
/// `±x_I` (the `Neg` flag selects the sign), as an OctBound.
OctBound unarySigned(const Octagon &O, size_t I, bool Neg) {
  Interval B = O.boundOf(I);
  if (!Neg)
    return B.hasHi() ? OctBound::of(B.hi()) : OctBound::inf();
  return B.hasLo() ? OctBound::of(-B.lo()) : OctBound::inf();
}

/// Visits every pairwise fact strictly tighter than its unary-implied bound
/// (the genuinely relational content of the octagon).
template <class Fn> void forEachRelationalFact(const Octagon &O, Fn F) {
  if (O.isEmpty())
    return;
  const int Signs[2] = {+1, -1};
  for (size_t I = 0; I < O.numVars(); ++I)
    for (size_t J = I + 1; J < O.numVars(); ++J)
      for (int SI : Signs)
        for (int SJ : Signs) {
          OctBound B = O.pairUpper(I, SI < 0, J, SJ < 0);
          if (!B.Finite)
            continue;
          OctBound Implied =
              unarySigned(O, I, SI < 0) + unarySigned(O, J, SJ < 0);
          if (Implied.Finite && Implied.B <= B.B)
            continue;
          F(I, SI, J, SJ, B.B);
        }
}

} // namespace

std::optional<OctagonDomain::Value>
OctagonDomain::transfer(const HornClause &C,
                        const std::vector<DomainPredState<Value>> &States)
    const {
  VarMap Idx;
  for (const PredApp &App : C.Body)
    for (const Term *Arg : App.Args)
      collectVars(Arg, Idx);
  for (const Term *Arg : C.HeadPred->Args)
    collectVars(Arg, Idx);
  collectVars(C.Constraint, Idx);

  size_t NumVars = Idx.size();
  size_t Arity = C.HeadPred->Args.size();
  // One dimension per clause variable plus one slot per head argument; the
  // slots are equated with the head argument terms and projected out last,
  // so relational facts between head arguments survive even when the
  // arguments are compound terms.
  Octagon O(NumVars + Arity);

  for (const PredApp &App : C.Body) {
    const DomainPredState<Value> &S = States[App.Pred->Index];
    if (!S.Reachable)
      return std::nullopt;
    if (!importBodyApp(O, App, S.Value, Idx))
      return std::nullopt;
  }
  if (O.isEmpty())
    return std::nullopt;

  // Two rounds so information discovered late reaches earlier conjuncts.
  for (int Round = 0; Round < 2; ++Round) {
    applyConstraint(O, C.Constraint, Idx);
    if (O.isEmpty())
      return std::nullopt;
  }

  for (size_t K = 0; K < Arity; ++K) {
    std::optional<LinearExpr> LE = LinearExpr::fromTerm(C.HeadPred->Args[K]);
    if (!LE)
      continue; // e.g. Mod: the slot stays unconstrained
    // slot_K - Expr = 0.
    LinCombo Combo;
    Combo.emplace_back(NumVars + K, Rational(1));
    for (const auto &[Var, Coef] : LE->coefficients())
      Combo.emplace_back(Idx.at(Var), -Coef);
    applyEq(O, Combo, -LE->constant());
  }
  if (O.isEmpty())
    return std::nullopt;

  std::vector<size_t> Slots(Arity);
  std::iota(Slots.begin(), Slots.end(), NumVars);
  Octagon R = O.project(Slots);
  if (R.isEmpty())
    return std::nullopt;
  return R;
}

bool OctagonDomain::join(Value &Into, const Value &From) const {
  Octagon Joined = Into.join(From);
  if (Joined == Into)
    return false;
  Into = std::move(Joined);
  return true;
}

void OctagonDomain::widen(Value &Into, const Value &Joined) const {
  Into = Into.widen(Joined);
}

bool OctagonDomain::narrow(Value &Into, const Value &Step) const {
  Octagon M = Into.meet(Step);
  if (M.isEmpty() || M == Into)
    return false;
  Into = std::move(M);
  return true;
}

const Term *OctagonDomain::toInvariant(TermManager &TM, const Predicate *P,
                                       const Value &V) const {
  if (V.isEmpty())
    return TM.mkFalse();
  std::vector<const Term *> Conj;
  for (size_t I = 0; I < V.numVars(); ++I) {
    Interval B = V.boundOf(I);
    if (B.hasLo())
      Conj.push_back(TM.mkGe(P->Params[I], TM.mkIntConst(B.lo())));
    if (B.hasHi())
      Conj.push_back(TM.mkLe(P->Params[I], TM.mkIntConst(B.hi())));
  }
  forEachRelationalFact(
      V, [&](size_t I, int SI, size_t J, int SJ, const Rational &Bound) {
        const Term *TI = SI < 0 ? TM.mkNeg(P->Params[I]) : P->Params[I];
        const Term *TJ = SJ < 0 ? TM.mkNeg(P->Params[J]) : P->Params[J];
        Conj.push_back(TM.mkLe(TM.mkAdd(TI, TJ), TM.mkIntConst(Bound)));
      });
  if (Conj.empty())
    return TM.mkTrue(); // unreachable behind the isTop gate
  return TM.mkAnd(std::move(Conj));
}

size_t OctagonDomain::relationalFactCount(const Octagon &O) {
  size_t N = 0;
  forEachRelationalFact(O, [&](size_t, int, size_t, int, const Rational &) {
    ++N;
  });
  return N;
}

std::vector<OctagonState>
analysis::runOctagonAnalysis(const AnalysisContext &Ctx,
                             FixpointTelemetry *Telemetry) {
  // The octagon strong closure polls the installed token and deadline at
  // its loop head, so a large DBM closure can stall neither portfolio
  // cancellation nor the analysis time budget.
  DomainCancelScope Scope(Ctx.Opts.Smt.Cancel, &Ctx.Clock);
  return runDomainAnalysis(OctagonDomain(), Ctx, Ctx.Opts.Octagons,
                           Telemetry);
}

const Term *analysis::octagonInvariant(TermManager &TM, const Predicate *P,
                                       const OctagonState &State) {
  return domainInvariant(OctagonDomain(), TM, P, State);
}
