//===- analysis/DependencyGraph.cpp - Predicate dependency graph ----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependencyGraph.h"

#include "analysis/AnalysisContext.h"

using namespace la;
using namespace la::analysis;
using namespace la::chc;

DependencyGraph::DependencyGraph(const ChcSystem &System,
                                 const std::vector<char> &LiveClause)
    : System(System), Live(LiveClause) {}

DependencyGraph::DependencyGraph(const AnalysisContext &Ctx)
    : DependencyGraph(Ctx.system(), Ctx.Result.LiveClause) {}

std::vector<char> DependencyGraph::derivableFromFacts() const {
  std::vector<char> Derivable(System.predicates().size(), 0);
  // Chaotic iteration: a clause fires once all its body predicates are
  // derivable; at most |preds| rounds since each round derives >= 1 pred.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    const auto &Clauses = System.clauses();
    for (size_t I = 0; I < Clauses.size(); ++I) {
      const HornClause &C = Clauses[I];
      if (!isLive(I) || !C.HeadPred || Derivable[C.HeadPred->Pred->Index])
        continue;
      bool BodyDerivable = true;
      for (const PredApp &App : C.Body)
        BodyDerivable &= static_cast<bool>(Derivable[App.Pred->Index]);
      if (BodyDerivable) {
        Derivable[C.HeadPred->Pred->Index] = 1;
        Changed = true;
      }
    }
  }
  return Derivable;
}

std::vector<char> DependencyGraph::reachesQuery() const {
  std::vector<char> InCone(System.predicates().size(), 0);
  std::vector<const Predicate *> Worklist;
  auto Mark = [&](const Predicate *P) {
    if (!InCone[P->Index]) {
      InCone[P->Index] = 1;
      Worklist.push_back(P);
    }
  };
  const auto &Clauses = System.clauses();
  for (size_t I = 0; I < Clauses.size(); ++I) {
    if (!isLive(I) || !Clauses[I].isQuery())
      continue;
    for (const PredApp &App : Clauses[I].Body)
      Mark(App.Pred);
  }
  // Backward closure: everything feeding a cone predicate's definition.
  while (!Worklist.empty()) {
    const Predicate *P = Worklist.back();
    Worklist.pop_back();
    for (size_t I : System.clausesWithHead(P)) {
      if (!isLive(I))
        continue;
      for (const PredApp &App : Clauses[I].Body)
        Mark(App.Pred);
    }
  }
  return InCone;
}
