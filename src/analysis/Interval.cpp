//===- analysis/Interval.cpp - Integer interval abstract domain -----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Interval.h"

using namespace la;
using namespace la::analysis;

Rational analysis::floorOf(const Rational &V) {
  // BigInt::divMod truncates toward zero with the remainder carrying the
  // dividend's sign; adjust downward for negative non-integral values.
  BigInt::DivModResult D = V.numerator().divMod(V.denominator());
  if (V.isNegative() && !D.Remainder.isZero())
    return Rational(D.Quotient - BigInt(1));
  return Rational(D.Quotient);
}

Rational analysis::ceilOf(const Rational &V) { return -floorOf(-V); }

Interval Interval::empty() {
  Interval I;
  I.Empty = true;
  return I;
}

Interval Interval::constant(Rational V) {
  Interval I;
  I.HasLo = I.HasHi = true;
  I.Lo = V;
  I.Hi = std::move(V);
  return I;
}

Interval Interval::range(Rational Lo, Rational Hi) {
  Interval I;
  I.HasLo = I.HasHi = true;
  I.Lo = std::move(Lo);
  I.Hi = std::move(Hi);
  I.normalize();
  return I;
}

Interval Interval::atLeast(Rational Lo) {
  Interval I;
  I.HasLo = true;
  I.Lo = std::move(Lo);
  return I;
}

Interval Interval::atMost(Rational Hi) {
  Interval I;
  I.HasHi = true;
  I.Hi = std::move(Hi);
  return I;
}

void Interval::normalize() {
  if (!Empty && HasLo && HasHi && Lo > Hi) {
    *this = Interval();
    Empty = true;
  }
}

bool Interval::contains(const Rational &V) const {
  if (Empty)
    return false;
  if (HasLo && V < Lo)
    return false;
  if (HasHi && V > Hi)
    return false;
  return true;
}

Interval Interval::join(const Interval &O) const {
  if (Empty)
    return O;
  if (O.Empty)
    return *this;
  Interval R;
  R.HasLo = HasLo && O.HasLo;
  if (R.HasLo)
    R.Lo = Lo <= O.Lo ? Lo : O.Lo;
  R.HasHi = HasHi && O.HasHi;
  if (R.HasHi)
    R.Hi = Hi >= O.Hi ? Hi : O.Hi;
  return R;
}

Interval Interval::meet(const Interval &O) const {
  if (Empty || O.Empty)
    return empty();
  Interval R;
  R.HasLo = HasLo || O.HasLo;
  if (R.HasLo)
    R.Lo = !HasLo ? O.Lo : !O.HasLo ? Lo : (Lo >= O.Lo ? Lo : O.Lo);
  R.HasHi = HasHi || O.HasHi;
  if (R.HasHi)
    R.Hi = !HasHi ? O.Hi : !O.HasHi ? Hi : (Hi <= O.Hi ? Hi : O.Hi);
  R.normalize();
  return R;
}

Interval Interval::widen(const Interval &Next) const {
  if (Empty)
    return Next;
  if (Next.Empty)
    return *this;
  Interval R;
  R.HasLo = HasLo && Next.HasLo && Next.Lo >= Lo;
  if (R.HasLo)
    R.Lo = Lo;
  R.HasHi = HasHi && Next.HasHi && Next.Hi <= Hi;
  if (R.HasHi)
    R.Hi = Hi;
  return R;
}

Interval Interval::operator+(const Interval &O) const {
  if (Empty || O.Empty)
    return empty();
  Interval R;
  R.HasLo = HasLo && O.HasLo;
  if (R.HasLo)
    R.Lo = Lo + O.Lo;
  R.HasHi = HasHi && O.HasHi;
  if (R.HasHi)
    R.Hi = Hi + O.Hi;
  return R;
}

Interval Interval::scaled(const Rational &Factor) const {
  if (Empty)
    return empty();
  if (Factor.isZero())
    return constant(Rational(0));
  Interval R;
  if (Factor.signum() > 0) {
    R.HasLo = HasLo;
    R.HasHi = HasHi;
    if (HasLo)
      R.Lo = Lo * Factor;
    if (HasHi)
      R.Hi = Hi * Factor;
  } else {
    R.HasLo = HasHi;
    R.HasHi = HasLo;
    if (HasHi)
      R.Lo = Hi * Factor;
    if (HasLo)
      R.Hi = Lo * Factor;
  }
  return R;
}

Interval Interval::tightenIntegral() const {
  if (Empty)
    return empty();
  Interval R = *this;
  if (R.HasLo)
    R.Lo = ceilOf(R.Lo);
  if (R.HasHi)
    R.Hi = floorOf(R.Hi);
  R.normalize();
  return R;
}

bool Interval::operator==(const Interval &O) const {
  if (Empty != O.Empty)
    return false;
  if (Empty)
    return true;
  if (HasLo != O.HasLo || HasHi != O.HasHi)
    return false;
  if (HasLo && Lo != O.Lo)
    return false;
  if (HasHi && Hi != O.Hi)
    return false;
  return true;
}

std::string Interval::toString() const {
  if (Empty)
    return "[]";
  std::string Out = "[";
  Out += HasLo ? Lo.toString() : "-inf";
  Out += ", ";
  Out += HasHi ? Hi.toString() : "+inf";
  return Out + "]";
}
