//===- analysis/InlinePass.h - Clause inlining / pred elimination -*- C++ -*-=//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first system-rewriting pass of the pipeline: inlines predicates
/// with exactly one defining clause into their call sites by substitution
/// (the unfold/resolution step of Spacer-style preprocessing) and
/// eliminates the predicates that become unreferenced. Every use site
///
///   phi /\ ... /\ P(t) /\ ... -> H        with P defined only by
///   psi /\ B_1(s_1) /\ ... /\ B_k(s_k) -> P(u)
///
/// becomes `phi /\ R[params -> t] /\ ... /\ B_j(a_j[params -> t]) ... -> H`
/// where `R` (the *residual*) and the dep arguments `a_j = s_j[sigma]` are
/// formulas over P's formal parameters only. They exist when the defining
/// clause *fully determines* its variables: every clause variable is an
/// integer linear term over the parameters (Gaussian elimination on the
/// head equations and the linear equality conjuncts of `psi`, pivots
/// restricted to +-1 coefficients so the solution is exact over Z), except
/// for variables confined to "floating" conjuncts that mention no determined
/// variable — those factor out of the implicit existential and are dropped
/// after one satisfiability check. Predicates that occur in their own
/// defining clause's body, lie on a definition cycle made entirely of
/// candidates (mutual recursion among single-definition predicates),
/// appear in a query-clause body, have zero or several defining clauses,
/// or whose defining clause resists determination are never inlined;
/// wider cycles through surviving predicates (an inner loop's preheader
/// defined from the outer loop head) are fine.
///
/// The transformation is equisatisfiable in both directions, and the
/// recorded `InlineMap` makes it *witness-preserving*: `backTranslateModel`
/// rebuilds a verified interpretation for every eliminated predicate from
/// the residual and the final interpretations of its deps, and
/// `backTranslateCex` re-materializes the eliminated derivation-tree nodes
/// of a refutation (one SMT model per transformed node that hides an
/// expansion). DESIGN.md §10 has the invariant and the proofs.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_INLINEPASS_H
#define LA_ANALYSIS_INLINEPASS_H

#include "analysis/PassManager.h"
#include "chc/ChcCheck.h"

#include <memory>
#include <optional>
#include <vector>

namespace la::analysis {

/// How one *original* body atom of a clause maps into the transformed
/// clause: either it survived (a passthrough to a body position of the
/// transformed clause) or it was expanded and must be re-materialized as a
/// derivation node during counterexample back-translation.
///
/// All passthrough positions — at every nesting depth — index the one flat
/// body of the transformed clause, so instantiating a slot tree into a use
/// site only adds a single offset.
struct InlineSlot {
  bool Expanded = false;
  /// Passthrough: position in the transformed clause's body.
  size_t DepPos = 0;
  /// Expansion: the eliminated predicate (of the *original* system), the
  /// argument terms of the vanished call (over the enclosing clause's
  /// variables after instantiation, over the predicate's parameters inside
  /// an `InlineDef`), and its defining clause in the original system.
  const chc::Predicate *Pred = nullptr;
  std::vector<const Term *> Args;
  size_t DefClauseIndex = 0;
  /// Expansion: one slot per original body atom of the defining clause.
  std::vector<InlineSlot> Children;
};

/// Everything recorded about one eliminated predicate. `Residual` and the
/// `Deps` argument terms are over `Pred->Params` only.
struct InlineDef {
  const chc::Predicate *Pred = nullptr;
  size_t DefClauseIndex = 0;
  /// Parameter-only remainder of the defining clause: the head equations
  /// `param_i = u_i[sigma]` plus the determined constraint conjuncts under
  /// `sigma`. The back-translated interpretation is
  /// `Residual /\ /\_j I(Deps[j].Pred)(Deps[j].Args)`.
  const Term *Residual = nullptr;
  /// Surviving body atoms of the (transitively expanded) defining clause.
  std::vector<chc::PredApp> Deps;
  /// One slot per original body atom of the defining clause, passthrough
  /// positions indexing `Deps`.
  std::vector<InlineSlot> Slots;
};

/// Per-clause provenance of the transformed system.
struct ClauseOrigin {
  /// Index of the source clause in the original system.
  size_t OrigIndex = 0;
  /// One slot per original body atom of that clause.
  std::vector<InlineSlot> Slots;
};

/// The full back-translation record of one `inlineSystem` run. Predicate
/// pointers refer to the *original* system; clause indices in `Origins` are
/// positions in the *transformed* system.
struct InlineMap {
  std::vector<InlineDef> Defs;
  /// Per original-predicate-index: 1 when the predicate was eliminated.
  /// (The transformed system re-registers every predicate in original
  /// order, so indices coincide between the two systems.)
  std::vector<char> Eliminated;
  /// `DefOf[i]` indexes `Defs` for eliminated predicate `i`, `npos` else.
  std::vector<size_t> DefOf;
  /// Indexed by transformed clause index.
  std::vector<ClauseOrigin> Origins;

  static constexpr size_t npos = static_cast<size_t>(-1);

  size_t numEliminated() const { return Defs.size(); }
};

/// Result of the standalone transformation: both null when nothing was
/// inlined. The transformed system shares the original's TermManager (its
/// re-registered predicates get pointer-identical parameter variables).
struct InlineResult {
  std::shared_ptr<chc::ChcSystem> System;
  std::shared_ptr<const InlineMap> Map;
};

/// Runs the inlining transformation on \p System. \p SmtOpts bounds the
/// floating-conjunct satisfiability checks; \p SmtChecks (optional) is
/// incremented per check issued.
InlineResult inlineSystem(const chc::ChcSystem &System,
                          const smt::SmtSolver::Options &SmtOpts = {},
                          size_t *SmtChecks = nullptr);

/// Rebuilds an interpretation of \p Original from \p Solved (a solution of
/// \p Transformed): surviving predicates keep their formulas, eliminated
/// ones get `Residual /\ /\ I(dep)` instantiated. The result is a genuine
/// solution of the original system whenever \p Solved solves the
/// transformed one.
chc::Interpretation backTranslateModel(const chc::ChcSystem &Original,
                                       const chc::ChcSystem &Transformed,
                                       const InlineMap &Map,
                                       const chc::Interpretation &Solved);

/// Rebuilds a refutation of \p Original from \p Cex (a refutation of
/// \p Transformed), re-materializing one derivation node per expansion slot.
/// Each transformed node hiding an expansion costs one SMT model query
/// (bounded by \p SmtOpts); returns std::nullopt if any query fails, in
/// which case the unsat verdict stands but the witness is dropped.
std::optional<chc::Counterexample>
backTranslateCex(const chc::ChcSystem &Original,
                 const chc::ChcSystem &Transformed, const InlineMap &Map,
                 const chc::Counterexample &Cex,
                 const smt::SmtSolver::Options &SmtOpts = {});

/// The pipeline pass: runs `inlineSystem` over the context's system and, on
/// success, rebinds the context to the transformed system
/// (`AnalysisContext::adoptTransformed`). Must be the first pass.
class InlinePass : public Pass {
public:
  std::string name() const override { return "inline"; }
  void run(AnalysisContext &Ctx) override;
};

} // namespace la::analysis

#endif // LA_ANALYSIS_INLINEPASS_H
