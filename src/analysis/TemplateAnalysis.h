//===- analysis/TemplateAnalysis.h - Template polyhedra over CHCs -*- C++ -*-//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The template-polyhedra abstract domain over CHC systems: each predicate
/// is abstracted by one `TemplatePolyhedron` over its argument positions,
/// against a per-predicate row matrix **mined statically from the clause
/// system** before the fixpoint starts:
///
///   * octagon-shaped defaults: `±x_i` always, `±x_i ± x_j` on small
///     arities, so the domain subsumes the interval rung and (on those
///     arities) the octagon rung;
///   * harvested rows: every linear atom of every live clause constraint is
///     projected onto the argument positions of each application of the
///     predicate (a query guard `x - 2y > 0` over an application `p(x, y)`
///     yields the row `(1, -2)` and its negation) — exactly the directions
///     the clause system itself talks about;
///   * loop-guard combinations: pairwise sums of harvested rows, capturing
///     compound guards split across clauses.
///
/// Mining carries zero soundness burden: a bad row can only fail to verify.
/// The clause-wise transfer function expands the constraint into a bounded
/// DNF and answers one LP maximization per head row and branch over the
/// exact `Simplex` (`smt/LpSolver.h`), with cooperative cancellation polled
/// in every LP loop. The fixpoint strategy is the shared driver
/// (`analysis/FixpointEngine.h`).
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_TEMPLATEANALYSIS_H
#define LA_ANALYSIS_TEMPLATEANALYSIS_H

#include "analysis/AnalysisContext.h"
#include "analysis/TemplatePolyhedra.h"

#include <optional>
#include <string>
#include <vector>

namespace la::analysis {

/// Mines one template matrix per predicate index of `Ctx.system()` from
/// the live clauses (see the file comment for the heuristics). Masked
/// predicates get an empty matrix.
std::vector<TemplateMatrixRef>
mineTemplates(const AnalysisContext &Ctx, const TemplateMiningOptions &Opts);

/// The template-polyhedra abstract domain; implements the `AbstractDomain`
/// concept against the matrices mined for one specific system.
class TemplateDomain {
public:
  using Value = TemplatePolyhedron;

  TemplateDomain(std::vector<TemplateMatrixRef> Matrices,
                 TemplateMiningOptions MineOpts,
                 std::shared_ptr<const CancellationToken> Cancel)
      : Matrices(std::move(Matrices)), MineOpts(MineOpts),
        Cancel(std::move(Cancel)) {}

  std::string name() const { return "polyhedra"; }
  Value bottom(const chc::Predicate *P) const {
    return TemplatePolyhedron::bottom(Matrices[P->Index]);
  }
  Value top(const chc::Predicate *P) const {
    return TemplatePolyhedron::top(Matrices[P->Index]);
  }
  std::optional<Value>
  transfer(const chc::HornClause &C,
           const std::vector<DomainPredState<Value>> &States) const;
  bool join(Value &Into, const Value &From) const;
  void widen(Value &Into, const Value &Joined) const;
  bool narrow(Value &Into, const Value &Step) const;
  bool isTop(const Value &V) const { return V.isTop(); }
  const Term *toInvariant(TermManager &TM, const chc::Predicate *P,
                          const Value &V) const;

private:
  std::vector<TemplateMatrixRef> Matrices;
  TemplateMiningOptions MineOpts;
  std::shared_ptr<const CancellationToken> Cancel;
};

static_assert(AbstractDomain<TemplateDomain>);

/// Mines templates and runs the polyhedra fixpoint over the live clauses of
/// \p Ctx; returns one state per predicate index. \p Matrices receives the
/// mined matrices (for stats and tests); \p Telemetry, when non-null, the
/// fixpoint engine's sweep telemetry.
std::vector<PolyhedraState>
runTemplateAnalysis(const AnalysisContext &Ctx,
                    std::vector<TemplateMatrixRef> *Matrices = nullptr,
                    FixpointTelemetry *Telemetry = nullptr);

/// Renders a state with the uniform cross-domain convention of
/// `domainInvariant`: `false` for bottom, nullptr for top, otherwise a
/// conjunction of `sum a_i x_i <= c` atoms over `P->Params`.
const Term *templateInvariant(TermManager &TM, const chc::Predicate *P,
                              const PolyhedraState &State);

} // namespace la::analysis

#endif // LA_ANALYSIS_TEMPLATEANALYSIS_H
