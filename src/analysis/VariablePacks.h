//===- analysis/VariablePacks.h - Astrée-style variable packing -*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable-pack decomposition for the relational domains (DESIGN.md §13).
/// Wide clauses (the `gen_elevator_*` scalability family encodes hundreds of
/// SSA dimensions into one clause) make a monolithic octagon transfer pay
/// O((2n)^3) per strong closure. Following the Astrée packing idea, the
/// per-clause variable-interaction graph (variables co-occurring in one
/// constraint atom, one compound argument term, or one small disjunction)
/// is partitioned with a union-find, the induced classes are merged into
/// per-predicate packs over the argument positions (with a configurable
/// size cap), and the octagon domain then carries one small DBM per pack
/// (`PackedOctagon`) instead of one monolithic `Octagon` per predicate.
///
/// Soundness: packing only *drops* inter-pack relations — each pack's DBM
/// is a projection of what the monolithic octagon would compute, and the
/// conjunction over packs therefore concretizes to a superset of the
/// monolithic concretization. No fact is ever invented, and every rendered
/// invariant is still re-proved by the verify pass before anything
/// downstream may trust it.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_VARIABLEPACKS_H
#define LA_ANALYSIS_VARIABLEPACKS_H

#include "analysis/Octagon.h"
#include "chc/Chc.h"
#include "logic/LinearExpr.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace la::analysis {

/// Knobs of the pack-decomposition layer.
struct PackingOptions {
  /// Master switch. Disabled, every predicate gets one pack holding all of
  /// its positions and every clause variable stays in scope, which
  /// reproduces the monolithic octagon transfer exactly (the differential
  /// tests pin this down).
  bool Enable = true;
  /// Cap on the number of argument positions merged into one pack. Merges
  /// that would exceed the cap are skipped, bounding every per-predicate
  /// DBM at 2*MaxPackSize signed variables.
  size_t MaxPackSize = 8;
  /// Disjunction coupling: branch joins correlate the variables written
  /// under one `Or` even when no single atom relates them, so small `Or`
  /// subtrees (at most this many distinct variables) unite their variables
  /// into one interaction class. The default admits a two-branch if over a
  /// guard and two updated state variables (the elevator's per-floor
  /// branches touch five SSA names: old/new floor and served plus the
  /// direction guard); genuinely wide disjunctions stay uncoupled — that
  /// decoupling is exactly the packing win.
  size_t OrCouplingCap = 5;
  /// Clause-local live-range windowing engages only above this many active
  /// clause variables. Below it the transfer keeps every dimension for the
  /// whole clause and applies the constraint twice (the monolithic
  /// behavior, preserving its precision on the normal corpus); above it
  /// dead dimensions are projected away eagerly so the scratch DBM stays
  /// small no matter how wide the clause is.
  size_t WindowThreshold = 24;
  /// Hard cap on simultaneously-live transient (non-pinned) window
  /// dimensions; overflow evicts the dimension whose last use is farthest
  /// away (sound: forgetting only loses facts).
  size_t MaxWindowVars = 40;
};

/// The pack structure of one predicate: a partition of its argument
/// positions. Pack ids are ordered by smallest member position and each
/// pack's position list is sorted ascending, so the layout is deterministic.
struct PredPacks {
  size_t Arity = 0;
  std::vector<size_t> PackOf;             ///< position -> pack id
  std::vector<std::vector<size_t>> Packs; ///< pack id -> sorted positions

  size_t packCount() const { return Packs.size(); }

  /// Single pack holding every position (the packing-disabled layout).
  static std::shared_ptr<const PredPacks> monolithic(size_t Arity);
  /// Consecutive packs of \p PackSize positions (bench/test helper).
  static std::shared_ptr<const PredPacks> uniform(size_t Arity,
                                                  size_t PackSize);
};

/// Pack layouts of every predicate of one system, plus summary counters for
/// the stats plumbing.
struct PackDecomposition {
  /// Indexed by `Predicate::Index`.
  std::vector<std::shared_ptr<const PredPacks>> Preds;
  size_t PacksBuilt = 0;
  size_t LargestPack = 0;
};

/// Union-find over a fixed universe with class-size tracking (used for both
/// clause-variable classes and predicate-position packs).
class PackUnionFind {
public:
  explicit PackUnionFind(size_t N) : Parent(N), Sz(N, 1) {
    for (size_t I = 0; I < N; ++I)
      Parent[I] = I;
  }
  size_t find(size_t A) const {
    while (Parent[A] != A) {
      Parent[A] = Parent[Parent[A]]; // path halving
      A = Parent[A];
    }
    return A;
  }
  /// Unites the classes of A and B; true when they were distinct.
  bool unite(size_t A, size_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return false;
    if (Sz[A] < Sz[B])
      std::swap(A, B);
    Parent[B] = A;
    Sz[A] += Sz[B];
    return true;
  }
  size_t size(size_t A) const { return Sz[find(A)]; }

private:
  mutable std::vector<size_t> Parent;
  std::vector<size_t> Sz;
};

/// Clause-variable numbering shared by the interaction graph and the
/// octagon transfer: every distinct Int variable of the clause gets one
/// index, in discovery order (body arguments, head arguments, constraint).
using ClauseVarMap = std::map<const Term *, size_t, TermIdLess>;

/// The variable-interaction structure of one clause: the variable numbering
/// plus the union-find of interacting variables. Interaction edges come
/// from (a) variables sharing a constraint atom, (b) variables sharing a
/// compound application-argument term, (c) variables under one small `Or`
/// subtree (`PackingOptions::OrCouplingCap`), and (d) pack-induced edges:
/// argument variables of positions already sharing a pack in \p Packs.
struct ClauseInteraction {
  ClauseVarMap Idx;
  PackUnionFind Classes;
};
ClauseInteraction clauseInteraction(const chc::HornClause &C,
                                    const PackDecomposition &Packs,
                                    const PackingOptions &Opts);

/// Computes the per-predicate packs of \p System over its live clauses
/// (\p LiveClause empty means all live): iterates clause-variable classes
/// and position merges to a fixpoint, so packs propagate through predicate
/// applications.
PackDecomposition
computePackDecomposition(const chc::ChcSystem &System,
                         const std::vector<char> &LiveClause,
                         const PackingOptions &Opts);

/// The packed octagon value: one small `Octagon` per pack of the
/// predicate's layout, concretizing to the conjunction of the packs'
/// constraint sets. Cross-pack queries (`pairUpper` across packs) answer
/// "unconstrained", which is exactly the information packing gives up.
class PackedOctagon {
public:
  PackedOctagon() = default; ///< top over the empty layout (arity 0)

  static PackedOctagon top(std::shared_ptr<const PredPacks> Layout);
  static PackedOctagon bottom(std::shared_ptr<const PredPacks> Layout);

  size_t numVars() const { return Layout ? Layout->Arity : 0; }
  size_t packCount() const { return Os.size(); }
  const PredPacks *layout() const { return Layout.get(); }
  const Octagon &pack(size_t K) const { return Os[K]; }
  Octagon &pack(size_t K) { return Os[K]; }

  bool isEmpty() const;
  bool isTop() const;

  /// The interval of argument \p I implied by its pack's octagon.
  Interval boundOf(size_t I) const;
  /// The least upper bound on `s_I x_I + s_J x_J`; infinite whenever the
  /// two positions live in different packs.
  OctBound pairUpper(size_t I, bool NegI, size_t J, bool NegJ) const;
  /// Enumerates every finite constraint of every pack, with variable ids
  /// mapped to global argument positions.
  void forEachConstraint(
      const std::function<void(const OctConstraint &)> &Fn) const;

  /// Lattice operators, applied pack-wise (operands must share a layout).
  PackedOctagon join(const PackedOctagon &O) const;
  PackedOctagon meet(const PackedOctagon &O) const;
  PackedOctagon widen(const PackedOctagon &Next) const;

  /// Semantic comparison: two empty values are equal regardless of which
  /// pack became empty.
  bool operator==(const PackedOctagon &O) const;
  bool operator!=(const PackedOctagon &O) const { return !(*this == O); }

  /// Hash of the closed canonical form (the transfer-cache input key).
  size_t hash() const;

  std::string toString() const;

private:
  std::shared_ptr<const PredPacks> Layout;
  /// Explicit bottom flag: a zero-pack (nullary) value has no pack octagon
  /// to carry emptiness.
  bool Bot = false;
  std::vector<Octagon> Os; ///< one per pack, over the pack's positions
};

/// Memoized per-(clause, pack) transfer cache: repeated sweeps over packs
/// whose input states did not change replay the cached output octagon
/// instead of re-running the transfer. Keyed by (clause identity, pack id)
/// with the input-bounds hash stored in the entry; a stale hash recomputes
/// (single-entry-per-key scheme). A hash collision can replay a wrong
/// octagon — that costs candidate precision only, never soundness, because
/// the verify pass re-proves every rendered invariant.
struct OctTransferCache {
  struct Key {
    const chc::HornClause *Clause = nullptr;
    size_t Pack = 0;
    bool operator==(const Key &O) const {
      return Clause == O.Clause && Pack == O.Pack;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return std::hash<const void *>()(K.Clause) * 31 ^ K.Pack;
    }
  };
  struct Entry {
    size_t InHash = 0;
    bool Feasible = false;
    Octagon Out;
  };
  std::unordered_map<Key, Entry, KeyHash> Map;
  size_t Hits = 0;
  size_t Misses = 0;

  void clear() {
    Map.clear();
    Hits = Misses = 0;
  }
};

} // namespace la::analysis

#endif // LA_ANALYSIS_VARIABLEPACKS_H
