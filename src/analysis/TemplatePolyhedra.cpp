//===- analysis/TemplatePolyhedra.cpp - Template polyhedron value ---------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/TemplatePolyhedra.h"

#include "analysis/DomainCancellation.h"
#include "smt/LpSolver.h"

#include <cassert>
#include <sstream>

using namespace la;
using namespace la::analysis;

size_t TemplateRow::arity() const {
  size_t N = 0;
  for (const Rational &C : Coef)
    N += !C.isZero();
  return N;
}

bool TemplateRow::operator<(const TemplateRow &O) const {
  return std::lexicographical_compare(
      Coef.begin(), Coef.end(), O.Coef.begin(), O.Coef.end(),
      [](const Rational &A, const Rational &B) { return A < B; });
}

std::string TemplateRow::toString() const {
  std::ostringstream OS;
  bool First = true;
  for (size_t I = 0; I < Coef.size(); ++I) {
    if (Coef[I].isZero())
      continue;
    if (!First)
      OS << " + ";
    First = false;
    if (Coef[I] != Rational(1))
      OS << Coef[I].toString() << "*";
    OS << "x" << I;
  }
  if (First)
    OS << "0";
  return OS.str();
}

Rational la::analysis::integralUpperBound(const DeltaRational &B) {
  if (!B.delta().isNegative())
    return Rational(B.real().floor());
  // Strictly below `real`: for an integral quantity that is floor(real),
  // except when real is itself an integer, where it is real - 1.
  if (B.real().isInteger())
    return B.real() - Rational(1);
  return Rational(B.real().floor());
}

TemplatePolyhedron TemplatePolyhedron::top(TemplateMatrixRef M) {
  TemplatePolyhedron P;
  P.Bounds.assign(M ? M->Rows.size() : 0, OctBound::inf());
  P.Mat = std::move(M);
  return P;
}

TemplatePolyhedron TemplatePolyhedron::bottom(TemplateMatrixRef M) {
  TemplatePolyhedron P = top(std::move(M));
  P.Empty = true;
  return P;
}

bool TemplatePolyhedron::isEmpty() const {
  close();
  return Empty;
}

bool TemplatePolyhedron::isTop() const {
  if (Empty)
    return false;
  // No closure: a finite stored bound could in principle be implied-loose,
  // but rendering it is still sound and `isTop` only gates whether an
  // invariant is worth emitting.
  for (const OctBound &B : Bounds)
    if (B.Finite)
      return false;
  return true;
}

void TemplatePolyhedron::setBound(size_t Row, const Rational &C) {
  assert(Row < Bounds.size() && "row out of range");
  if (Empty)
    return;
  OctBound New = OctBound::of(C);
  if (New < Bounds[Row]) {
    Bounds[Row] = std::move(New);
    Closed = false;
  }
}

void TemplatePolyhedron::setAllBounds(std::vector<OctBound> B,
                                      bool AreClosed) {
  assert(B.size() == Bounds.size() && "bound vector size mismatch");
  Bounds = std::move(B);
  Empty = false;
  Closed = AreClosed;
}

OctBound TemplatePolyhedron::boundOfRow(size_t Row) const {
  assert(Row < Bounds.size() && "row out of range");
  close();
  if (Empty)
    return OctBound::of(Rational(0)); // arbitrary: empty implies anything
  return Bounds[Row];
}

Interval TemplatePolyhedron::boundOf(size_t Arg) const {
  close();
  Interval R = Interval::top();
  if (Empty || !Mat)
    return R;
  for (size_t I = 0; I < Mat->Rows.size(); ++I) {
    const TemplateRow &Row = Mat->Rows[I];
    if (!Bounds[I].Finite || Row.arity() != 1 || Arg >= Row.Coef.size() ||
        Row.Coef[Arg].isZero())
      continue;
    // c * x <= b: rows are gcd-1 integral, so unary rows have c = ±1.
    if (Row.Coef[Arg].signum() > 0)
      R = R.meet(Interval::atMost(Bounds[I].B / Row.Coef[Arg]));
    else
      R = R.meet(Interval::atLeast(Bounds[I].B / Row.Coef[Arg]));
  }
  return R;
}

bool TemplatePolyhedron::contains(const std::vector<Rational> &Point) const {
  if (isEmpty())
    return false;
  assert(Mat && Point.size() == Mat->Arity && "point arity mismatch");
  for (size_t I = 0; I < Bounds.size(); ++I) {
    if (!Bounds[I].Finite)
      continue;
    Rational V;
    for (size_t J = 0; J < Point.size(); ++J)
      V += Mat->Rows[I].Coef[J] * Point[J];
    if (V > Bounds[I].B)
      return false;
  }
  return true;
}

size_t TemplatePolyhedron::relationalRowCount() const {
  close();
  if (Empty || !Mat)
    return 0;
  size_t N = 0;
  for (size_t I = 0; I < Bounds.size(); ++I)
    N += Bounds[I].Finite && Mat->Rows[I].arity() >= 2;
  return N;
}

TemplatePolyhedron
TemplatePolyhedron::join(const TemplatePolyhedron &O) const {
  assert(Mat == O.Mat && "join across different templates");
  if (isEmpty())
    return O;
  if (O.isEmpty())
    return *this;
  // Both sides closed by the isEmpty() calls above: every bound is the
  // tight supremum over its operand, so the row-wise max is the tight
  // supremum over the union and the result needs no re-closure.
  TemplatePolyhedron R = *this;
  for (size_t I = 0; I < Bounds.size(); ++I)
    if (R.Bounds[I] < O.Bounds[I])
      R.Bounds[I] = O.Bounds[I];
  R.Closed = true;
  return R;
}

TemplatePolyhedron
TemplatePolyhedron::meet(const TemplatePolyhedron &O) const {
  assert(Mat == O.Mat && "meet across different templates");
  if (Empty)
    return *this;
  if (O.Empty)
    return O;
  TemplatePolyhedron R = *this;
  for (size_t I = 0; I < Bounds.size(); ++I)
    if (O.Bounds[I] < R.Bounds[I])
      R.Bounds[I] = O.Bounds[I];
  R.Closed = false;
  return R;
}

TemplatePolyhedron
TemplatePolyhedron::widen(const TemplatePolyhedron &Next) const {
  assert(Mat == Next.Mat && "widen across different templates");
  if (Empty)
    return Next;
  if (Next.Empty)
    return *this;
  // Operate on the closed bounds (the engine hands us closed iterates
  // anyway); dropping rows from a closed value keeps the survivors tight.
  close();
  Next.close();
  if (Empty)
    return Next;
  if (Next.Empty)
    return *this;
  TemplatePolyhedron R = *this;
  for (size_t I = 0; I < Bounds.size(); ++I)
    if (Bounds[I] < Next.Bounds[I])
      R.Bounds[I] = OctBound::inf();
  R.Closed = true;
  return R;
}

bool TemplatePolyhedron::operator==(const TemplatePolyhedron &O) const {
  assert(Mat == O.Mat && "comparison across different templates");
  close();
  O.close();
  if (Empty || O.Empty)
    return Empty == O.Empty;
  for (size_t I = 0; I < Bounds.size(); ++I)
    if (!(Bounds[I] == O.Bounds[I]))
      return false;
  return true;
}

std::string TemplatePolyhedron::toString() const {
  if (isEmpty())
    return "empty";
  std::ostringstream OS;
  bool Any = false;
  for (size_t I = 0; I < Bounds.size(); ++I) {
    if (!Bounds[I].Finite)
      continue;
    if (Any)
      OS << " /\\ ";
    Any = true;
    OS << Mat->Rows[I].toString() << " <= " << Bounds[I].B.toString();
  }
  return Any ? OS.str() : "top";
}

void TemplatePolyhedron::close() const {
  if (Closed || Empty)
    return;
  Closed = true; // tentatively; reverted on cancellation below
  if (!Mat || Mat->Rows.empty())
    return;

  // Feed every finite row into one LP and re-maximize each row against the
  // whole conjunction. Unbounded rows can acquire finite bounds here (e.g.
  // x <= 3 /\ y - x <= 0 implies y <= 3 even when y's row was unbounded).
  smt::LpProblem Lp(DomainCancelScope::current());
  std::vector<int> Vars(Mat->Arity);
  for (size_t J = 0; J < Mat->Arity; ++J)
    Vars[J] = Lp.addVar();
  auto Combo = [&](const TemplateRow &Row) {
    smt::LinearCombo C;
    for (size_t J = 0; J < Row.Coef.size(); ++J)
      if (!Row.Coef[J].isZero())
        C.emplace_back(Vars[J], Row.Coef[J]);
    return C;
  };
  for (size_t I = 0; I < Bounds.size(); ++I)
    if (Bounds[I].Finite)
      Lp.addLe(Combo(Mat->Rows[I]), Bounds[I].B);
  if (!Lp.feasible()) {
    Empty = true;
    return;
  }
  for (size_t I = 0; I < Bounds.size(); ++I) {
    if (DomainCancelScope::cancelled()) {
      Closed = false; // partial tightening is sound; finish another time
      return;
    }
    smt::LpProblem::Optimum Opt = Lp.maximize(Combo(Mat->Rows[I]));
    switch (Opt.St) {
    case smt::LpProblem::Status::Optimal: {
      // Rows are integral with gcd 1 over integer arguments, so the row
      // value is an integer and the rational optimum floors soundly.
      OctBound Tight = OctBound::of(integralUpperBound(Opt.Value));
      if (Tight < Bounds[I])
        Bounds[I] = std::move(Tight);
      break;
    }
    case smt::LpProblem::Status::Unbounded:
      break; // keep the stored bound (it is +inf or given)
    case smt::LpProblem::Status::Infeasible:
      Empty = true;
      return;
    case smt::LpProblem::Status::Cancelled:
      Closed = false;
      return;
    }
  }
}
