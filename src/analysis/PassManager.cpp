//===- analysis/PassManager.cpp - Static pre-analysis pipeline ------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/PassManager.h"

#include "analysis/DependencyGraph.h"

#include <cassert>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

//===----------------------------------------------------------------------===//
// Stats and result plumbing
//===----------------------------------------------------------------------===//

void PassStats::merge(const PassStats &O) {
  Seconds += O.Seconds;
  ClausesPruned += O.ClausesPruned;
  PredicatesResolved += O.PredicatesResolved;
  BoundsFound += O.BoundsFound;
  InvariantsVerified += O.InvariantsVerified;
  InvariantsRejected += O.InvariantsRejected;
  SmtChecks += O.SmtChecks;
  Check.merge(O.Check);
}

std::string PassStats::toString() const {
  char Buf[320];
  int N = snprintf(Buf, sizeof(Buf),
                   "%-10s %8.3fs  pruned %zu  resolved %zu  bounds %zu  "
                   "verified %zu  rejected %zu  smt %zu",
                   Name.c_str(), Seconds, ClausesPruned, PredicatesResolved,
                   BoundsFound, InvariantsVerified, InvariantsRejected,
                   SmtChecks);
  if (Check.CacheHits + Check.CacheMisses > 0 && N > 0 &&
      static_cast<size_t>(N) < sizeof(Buf))
    snprintf(Buf + N, sizeof(Buf) - N,
             "  cache %llu/%llu  pushes %llu  reuse %llu",
             static_cast<unsigned long long>(Check.CacheHits),
             static_cast<unsigned long long>(Check.CacheHits +
                                             Check.CacheMisses),
             static_cast<unsigned long long>(Check.ScopePushes),
             static_cast<unsigned long long>(Check.RebuildsAvoided));
  return Buf;
}

size_t AnalysisResult::numLiveClauses() const {
  size_t N = 0;
  for (char L : LiveClause)
    N += L != 0;
  return N;
}

size_t AnalysisResult::boundsFound() const {
  size_t N = 0;
  for (const auto &[P, Bs] : Bounds)
    for (const ArgBounds &B : Bs)
      N += (B.HasLo ? 1 : 0) + (B.HasHi ? 1 : 0);
  return N;
}

double AnalysisResult::totalSeconds() const {
  double S = 0;
  for (const PassStats &P : Passes)
    S += P.Seconds;
  return S;
}

size_t AnalysisResult::smtChecks() const {
  size_t N = 0;
  for (const PassStats &P : Passes)
    N += P.SmtChecks;
  return N;
}

AnalysisResult AnalysisResult::allLive(const ChcSystem &System) {
  AnalysisResult R;
  R.LiveClause.assign(System.clauses().size(), 1);
  return R;
}

std::string AnalysisResult::report() const {
  char Buf[256];
  snprintf(Buf, sizeof(Buf),
           "analysis: %zu/%zu clauses pruned, %zu predicates resolved, "
           "%zu bounds, %zu invariants, proved-sat=%s, %.3fs\n",
           clausesPruned(), LiveClause.size(), predicatesResolved(),
           boundsFound(), Invariants.size(), ProvedSat ? "yes" : "no",
           totalSeconds());
  std::string Out = Buf;
  for (const PassStats &P : Passes)
    Out += "  " + P.toString() + "\n";
  return Out;
}

AnalysisContext::AnalysisContext(const ChcSystem &System,
                                 const AnalysisOptions &Opts)
    : System(System), TM(System.termManager()), Opts(Opts),
      Clock(Opts.TimeoutSeconds) {
  Result.LiveClause.assign(System.clauses().size(), 1);
}

bool AnalysisContext::prune(size_t ClauseIdx) {
  bool WasLive = Result.LiveClause[ClauseIdx];
  Result.LiveClause[ClauseIdx] = 0;
  return WasLive;
}

//===----------------------------------------------------------------------===//
// Passes
//===----------------------------------------------------------------------===//

namespace {

/// Resolves predicates with no derivation at all to `false`. Every clause
/// headed by such a predicate has an underivable body atom (by the least-
/// fixpoint definition) and every clause using one has a `false` body
/// conjunct, so both kinds are valid forever and can be pruned.
class FactReachabilityPass : public Pass {
public:
  std::string name() const override { return "fact-reach"; }

  void run(AnalysisContext &Ctx, PassStats &Stats) override {
    DependencyGraph Graph(Ctx.System, Ctx.Result.LiveClause);
    std::vector<char> Derivable = Graph.derivableFromFacts();
    for (const Predicate *P : Ctx.System.predicates()) {
      if (Derivable[P->Index] || Ctx.isFixed(P))
        continue;
      Ctx.Result.Fixed[P] = Ctx.TM.mkFalse();
      ++Stats.PredicatesResolved;
      for (size_t CI : Ctx.System.clausesWithHead(P))
        Stats.ClausesPruned += Ctx.prune(CI);
      for (size_t CI : Ctx.System.clausesUsing(P))
        Stats.ClausesPruned += Ctx.prune(CI);
    }
  }
};

/// Resolves predicates outside the cone of influence of the query clauses
/// to `true`: nothing ever demands an upper bound on them, so `true` makes
/// their defining clauses valid, and no live clause can mention them in a
/// body (a body occurrence would place them inside the cone).
class QueryConePass : public Pass {
public:
  std::string name() const override { return "query-cone"; }

  void run(AnalysisContext &Ctx, PassStats &Stats) override {
    DependencyGraph Graph(Ctx.System, Ctx.Result.LiveClause);
    std::vector<char> InCone = Graph.reachesQuery();
    for (const Predicate *P : Ctx.System.predicates()) {
      if (InCone[P->Index] || Ctx.isFixed(P))
        continue;
      Ctx.Result.Fixed[P] = Ctx.TM.mkTrue();
      ++Stats.PredicatesResolved;
      for (size_t CI : Ctx.System.clausesWithHead(P))
        Stats.ClausesPruned += Ctx.prune(CI);
    }
  }
};

/// Runs the interval fixpoint; results are candidates only until the verify
/// pass has re-proved them.
class IntervalPass : public Pass {
public:
  std::string name() const override { return "intervals"; }

  void run(AnalysisContext &Ctx, PassStats &Stats) override {
    std::vector<char> Skip(Ctx.System.predicates().size(), 0);
    for (const auto &[P, F] : Ctx.Result.Fixed)
      Skip[P->Index] = 1;
    Ctx.Intervals = runIntervalAnalysis(Ctx.System, Ctx.Result.LiveClause,
                                        Skip, Ctx.Opts.Intervals);
    for (const Predicate *P : Ctx.System.predicates()) {
      if (Skip[P->Index])
        continue;
      const PredIntervalState &S = Ctx.Intervals[P->Index];
      if (!S.Reachable)
        continue;
      for (const Interval &I : S.Args)
        Stats.BoundsFound += (I.hasLo() ? 1 : 0) + (I.hasHi() ? 1 : 0);
    }
  }
};

/// Re-proves every candidate invariant with the SMT solver, resolves
/// verified-`false` predicates, and discharges query clauses that are
/// already valid under the verified seed.
class InvariantVerifyPass : public Pass {
public:
  std::string name() const override { return "verify"; }

  void run(AnalysisContext &Ctx, PassStats &Stats) override {
    TermManager &TM = Ctx.TM;
    AnalysisResult &Res = Ctx.Result;

    // Candidate invariants from the interval states.
    std::map<const Predicate *, const Term *> Candidates;
    if (!Ctx.Intervals.empty()) {
      for (const Predicate *P : Ctx.System.predicates()) {
        if (Ctx.isFixed(P))
          continue;
        if (const Term *Inv = intervalInvariant(TM, P, Ctx.Intervals[P->Index]))
          Candidates.emplace(P, Inv);
      }
    }
    if (Candidates.empty() && Res.Fixed.empty())
      return; // nothing to verify, nothing to discharge

    // One incremental backend for the whole pass: the inductiveness fixpoint
    // re-checks clauses whose candidates did not change between rescans, and
    // the memo cache answers those without touching a solver.
    ClauseCheckContext Checker(Ctx.System, Ctx.Opts.Smt);

    Interpretation Cand(TM);
    for (const auto &[P, F] : Res.Fixed)
      Cand.set(P, F);
    for (const auto &[P, Inv] : Candidates)
      Cand.set(P, Inv);

    // Inductiveness fixpoint. Only clauses whose head carries a candidate
    // can be invalid (a `true` head validates the clause trivially); when a
    // candidate fails its clause, drop it and rescan, since the weakened
    // body may invalidate other candidates.
    const auto &Clauses = Ctx.System.clauses();
    bool Dropped = true;
    while (Dropped && !Candidates.empty()) {
      Dropped = false;
      for (size_t CI = 0; CI < Clauses.size() && !Candidates.empty(); ++CI) {
        const HornClause &C = Clauses[CI];
        if (!Ctx.isLive(CI) || !C.HeadPred)
          continue;
        const Predicate *Head = C.HeadPred->Pred;
        if (!Candidates.count(Head))
          continue;
        if (Ctx.Clock.expired()) {
          // Out of budget: nothing else gets verified this run.
          Stats.InvariantsRejected += Candidates.size();
          Stats.Check = Checker.stats();
          return;
        }
        ClauseCheckResult Check = Checker.check(CI, Cand);
        ++Stats.SmtChecks;
        if (Check.Status == ClauseStatus::Valid)
          continue;
        Candidates.erase(Head);
        Cand.set(Head, TM.mkTrue());
        ++Stats.InvariantsRejected;
        Dropped = true;
      }
    }
    Stats.InvariantsVerified = Candidates.size();

    // A verified `false` resolves the predicate outright: its defining
    // clauses are valid under the seed and stay so when bodies strengthen,
    // and clauses using it have a permanently-false body conjunct.
    for (auto It = Candidates.begin(); It != Candidates.end();) {
      const Predicate *P = It->first;
      if (!It->second->isFalse()) {
        ++It;
        continue;
      }
      Res.Fixed[P] = TM.mkFalse();
      ++Stats.PredicatesResolved;
      for (size_t CI : Ctx.System.clausesWithHead(P))
        Stats.ClausesPruned += Ctx.prune(CI);
      for (size_t CI : Ctx.System.clausesUsing(P))
        Stats.ClausesPruned += Ctx.prune(CI);
      It = Candidates.erase(It);
    }

    Res.Invariants = Candidates;
    if (!Ctx.Intervals.empty()) {
      for (const auto &[P, Inv] : Candidates) {
        std::vector<ArgBounds> Bs;
        const PredIntervalState &S = Ctx.Intervals[P->Index];
        for (size_t J = 0; J < S.Args.size(); ++J) {
          Interval I = S.Args[J].tightenIntegral();
          if (!I.hasLo() && !I.hasHi())
            continue;
          ArgBounds B;
          B.ArgIndex = J;
          B.HasLo = I.hasLo();
          B.HasHi = I.hasHi();
          if (B.HasLo)
            B.Lo = I.lo();
          if (B.HasHi)
            B.Hi = I.hi();
          Bs.push_back(std::move(B));
        }
        if (!Bs.empty())
          Res.Bounds.emplace(P, std::move(Bs));
      }
    }

    // Query discharge: a query clause valid under the seed stays valid when
    // body interpretations strengthen (the CEGAR loop only ever conjoins
    // onto the seed), so it can be pruned. If every live query is valid the
    // seed is a full solution.
    bool AllQueriesValid = true;
    for (size_t CI = 0; CI < Clauses.size(); ++CI) {
      const HornClause &C = Clauses[CI];
      if (!Ctx.isLive(CI) || !C.isQuery())
        continue;
      if (Ctx.Clock.expired()) {
        Stats.Check = Checker.stats();
        return; // skip discharge; ProvedSat stays false
      }
      ClauseCheckResult Check = Checker.check(CI, Cand);
      ++Stats.SmtChecks;
      if (Check.Status == ClauseStatus::Valid)
        Stats.ClausesPruned += Ctx.prune(CI);
      else
        AllQueriesValid = false;
    }
    // All candidate-headed clauses are inductive, `true`-headed clauses are
    // trivially valid, and every query discharged: the seed is a solution.
    Res.ProvedSat = AllQueriesValid;
    Stats.Check = Checker.stats();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Manager
//===----------------------------------------------------------------------===//

AnalysisResult PassManager::run(const ChcSystem &System,
                                const AnalysisOptions &Opts) const {
  AnalysisContext Ctx(System, Opts);
  for (const std::unique_ptr<Pass> &P : Passes) {
    if (Ctx.Clock.expired())
      break;
    PassStats Stats;
    Stats.Name = P->name();
    Timer Watch;
    P->run(Ctx, Stats);
    Stats.Seconds = Watch.elapsedSeconds();
    Ctx.Result.Passes.push_back(std::move(Stats));
  }
  return std::move(Ctx.Result);
}

PassManager PassManager::defaultPipeline(const AnalysisOptions &Opts) {
  PassManager PM;
  if (Opts.EnableSlicing) {
    PM.addPass(std::make_unique<FactReachabilityPass>());
    PM.addPass(std::make_unique<QueryConePass>());
  }
  if (Opts.EnableIntervals)
    PM.addPass(std::make_unique<IntervalPass>());
  PM.addPass(std::make_unique<InvariantVerifyPass>());
  return PM;
}

AnalysisResult analysis::analyzeSystem(const ChcSystem &System,
                                       const AnalysisOptions &Opts) {
  return PassManager::defaultPipeline(Opts).run(System, Opts);
}
