//===- analysis/PassManager.cpp - Static pre-analysis pipeline ------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/PassManager.h"

#include "analysis/DependencyGraph.h"
#include "analysis/InlinePass.h"
#include "analysis/IntervalAnalysis.h"
#include "analysis/OctagonAnalysis.h"
#include "analysis/TemplateAnalysis.h"
#include "smt/LpSolver.h"

#include <cassert>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

//===----------------------------------------------------------------------===//
// Passes
//===----------------------------------------------------------------------===//

namespace {

/// Resolves predicates with no derivation at all to `false`. Every clause
/// headed by such a predicate has an underivable body atom (by the least-
/// fixpoint definition) and every clause using one has a `false` body
/// conjunct, so both kinds are valid forever and can be pruned.
class FactReachabilityPass : public Pass {
public:
  std::string name() const override { return "fact-reach"; }

  void run(AnalysisContext &Ctx) override {
    PassStats &Stats = Ctx.stats();
    DependencyGraph Graph(Ctx);
    std::vector<char> Derivable = Graph.derivableFromFacts();
    for (const Predicate *P : Ctx.system().predicates()) {
      if (Derivable[P->Index] || Ctx.isFixed(P))
        continue;
      Ctx.fix(P, Ctx.TM.mkFalse());
      ++Stats.PredicatesResolved;
      for (size_t CI : Ctx.system().clausesWithHead(P))
        Stats.ClausesPruned += Ctx.prune(CI);
      for (size_t CI : Ctx.system().clausesUsing(P))
        Stats.ClausesPruned += Ctx.prune(CI);
    }
  }
};

/// Resolves predicates outside the cone of influence of the query clauses
/// to `true`: nothing ever demands an upper bound on them, so `true` makes
/// their defining clauses valid, and no live clause can mention them in a
/// body (a body occurrence would place them inside the cone).
class QueryConePass : public Pass {
public:
  std::string name() const override { return "query-cone"; }

  void run(AnalysisContext &Ctx) override {
    PassStats &Stats = Ctx.stats();
    DependencyGraph Graph(Ctx);
    std::vector<char> InCone = Graph.reachesQuery();
    for (const Predicate *P : Ctx.system().predicates()) {
      if (InCone[P->Index] || Ctx.isFixed(P))
        continue;
      Ctx.fix(P, Ctx.TM.mkTrue());
      ++Stats.PredicatesResolved;
      for (size_t CI : Ctx.system().clausesWithHead(P))
        Stats.ClausesPruned += Ctx.prune(CI);
    }
  }
};

/// Runs the interval fixpoint; results are candidates only until the verify
/// pass has re-proved them.
class IntervalPass : public Pass {
public:
  std::string name() const override { return "intervals"; }

  void run(AnalysisContext &Ctx) override {
    PassStats &Stats = Ctx.stats();
    FixpointTelemetry Tele;
    Ctx.Intervals = runIntervalAnalysis(Ctx, &Tele);
    Stats.HitSweepCap = Tele.HitSweepCap;
    Stats.SweepCapHits += Tele.HitSweepCap;
    for (const Predicate *P : Ctx.system().predicates()) {
      if (Ctx.isFixed(P))
        continue;
      const IntervalState &S = Ctx.Intervals[P->Index];
      if (!S.Reachable)
        continue;
      for (const Interval &I : S.Value)
        Stats.BoundsFound += (I.hasLo() ? 1 : 0) + (I.hasHi() ? 1 : 0);
    }
  }
};

/// Runs the octagon fixpoint; like the interval pass, everything it finds
/// is a candidate until verified.
class OctagonPass : public Pass {
public:
  std::string name() const override { return "octagons"; }

  void run(AnalysisContext &Ctx) override {
    PassStats &Stats = Ctx.stats();
    FixpointTelemetry Tele;
    size_t Hits0 = Ctx.OctXfer.Hits, Misses0 = Ctx.OctXfer.Misses;
    Ctx.Octagons = runOctagonAnalysis(Ctx, &Tele);
    Stats.HitSweepCap = Tele.HitSweepCap;
    Stats.SweepCapHits += Tele.HitSweepCap;
    Stats.XferCacheHits += Ctx.OctXfer.Hits - Hits0;
    Stats.XferCacheMisses += Ctx.OctXfer.Misses - Misses0;
    Stats.PacksBuilt = Ctx.packs().PacksBuilt;
    Stats.LargestPack = Ctx.packs().LargestPack;
    for (const Predicate *P : Ctx.system().predicates()) {
      if (Ctx.isFixed(P))
        continue;
      const OctagonState &S = Ctx.Octagons[P->Index];
      if (!S.Reachable)
        continue;
      for (size_t J = 0; J < S.Value.numVars(); ++J) {
        Interval B = S.Value.boundOf(J);
        Stats.BoundsFound += (B.hasLo() ? 1 : 0) + (B.hasHi() ? 1 : 0);
      }
      Stats.RelationalFound += OctagonDomain::relationalFactCount(S.Value);
    }
  }
};

/// Runs the template-polyhedra fixpoint over the mined matrices; like the
/// interval and octagon passes, everything it finds is a candidate until
/// the verify pass has re-proved it.
class PolyhedraPass : public Pass {
public:
  std::string name() const override { return "polyhedra"; }

  void run(AnalysisContext &Ctx) override {
    PassStats &Stats = Ctx.stats();
    FixpointTelemetry Tele;
    smt::takeLpPivots(); // drain pivots a previous pass left behind
    Ctx.Polyhedra = runTemplateAnalysis(Ctx, &Ctx.PolyMatrices, &Tele);
    Stats.HitSweepCap = Tele.HitSweepCap;
    Stats.SweepCapHits += Tele.HitSweepCap;
    for (const TemplateMatrixRef &M : Ctx.PolyMatrices)
      Stats.TemplatesMined += M ? M->Rows.size() : 0;
    for (const Predicate *P : Ctx.system().predicates()) {
      if (Ctx.isFixed(P))
        continue;
      const PolyhedraState &S = Ctx.Polyhedra[P->Index];
      if (!S.Reachable)
        continue;
      for (size_t J = 0; J < P->arity(); ++J) {
        Interval B = S.Value.boundOf(J);
        Stats.BoundsFound += (B.hasLo() ? 1 : 0) + (B.hasHi() ? 1 : 0);
      }
      Stats.PolyhedraFacts += S.Value.relationalRowCount();
    }
    Stats.LpPivots += smt::takeLpPivots();
  }
};

/// Re-proves every candidate invariant with the SMT solver, resolves
/// verified-`false` predicates, and discharges query clauses that are
/// already valid under the verified seed. Each predicate carries a ladder
/// of candidates ordered strongest first (polyhedra, then octagon, then
/// interval): a clause failure demotes the head predicate one rung before
/// dropping it to `true`, so a too-strong relational candidate cannot cost
/// the weaker fact the previous pipeline would have kept. The strongest
/// rung conjoins the polyhedral and octagon candidates — the intersection
/// of two inductive invariants is inductive over Horn clauses, so the rung
/// only ever strengthens what either candidate alone would verify.
class InvariantVerifyPass : public Pass {
public:
  std::string name() const override { return "verify"; }

  void run(AnalysisContext &Ctx) override {
    PassStats &Stats = Ctx.stats();
    TermManager &TM = Ctx.TM;
    AnalysisResult &Res = Ctx.Result;
    // Rendering polyhedral candidates below runs LP bound queries; drain
    // the pivot counter around the pass so they are attributed here.
    smt::takeLpPivots();
    struct PivotDrain {
      PassStats &Stats;
      ~PivotDrain() { Stats.LpPivots += smt::takeLpPivots(); }
    } Drain{Stats};

    struct Ladder {
      struct Level {
        const Term *Inv = nullptr;
        /// Which domain states stand behind this rung (drive the bound
        /// and feature-row publishing of the surviving level).
        bool UsesPoly = false;
        bool UsesOct = false;
        bool UsesInterval = false;
      };
      std::vector<Level> Levels;
      size_t Cur = 0;

      const Term *current() const { return Levels[Cur].Inv; }
      const Level &level() const { return Levels[Cur]; }
    };
    std::map<const Predicate *, Ladder> Ladders;
    for (const Predicate *P : Ctx.system().predicates()) {
      if (Ctx.isFixed(P))
        continue;
      const Term *PolyInv =
          Ctx.Polyhedra.empty()
              ? nullptr
              : templateInvariant(TM, P, Ctx.Polyhedra[P->Index]);
      const Term *OctInv =
          Ctx.Octagons.empty()
              ? nullptr
              : octagonInvariant(TM, P, Ctx.Octagons[P->Index]);
      const Term *IntInv =
          Ctx.Intervals.empty()
              ? nullptr
              : intervalInvariant(TM, P, Ctx.Intervals[P->Index]);
      Ladder L;
      // Terms are hash-consed, so identical candidates dedupe by pointer;
      // a dedup merges the domain flags (e.g. the polyhedral and octagon
      // candidates rendering the same formula stand on both states).
      auto Push = [&](const Term *Inv, bool Poly, bool Oct, bool Intv) {
        if (!Inv)
          return;
        for (Ladder::Level &Lvl : L.Levels)
          if (Lvl.Inv == Inv) {
            Lvl.UsesPoly |= Poly;
            Lvl.UsesOct |= Oct;
            Lvl.UsesInterval |= Intv;
            return;
          }
        L.Levels.push_back({Inv, Poly, Oct, Intv});
      };
      if (PolyInv && OctInv && PolyInv != OctInv)
        Push(TM.mkAnd(PolyInv, OctInv), true, true, false);
      else
        Push(PolyInv, true, false, false);
      Push(OctInv, false, true, false);
      Push(IntInv, false, false, true);
      if (!L.Levels.empty())
        Ladders.emplace(P, std::move(L));
    }
    if (Ladders.empty() && Res.Fixed.empty())
      return; // nothing to verify, nothing to discharge

    // One incremental backend for the whole pass: the inductiveness fixpoint
    // re-checks clauses whose candidates did not change between rescans, and
    // the memo cache answers those without touching a solver.
    ClauseCheckContext Checker(Ctx.system(), Ctx.Opts.Smt);

    Interpretation Cand(TM);
    for (const auto &[P, F] : Res.Fixed)
      Cand.set(P, F);
    for (const auto &[P, L] : Ladders)
      Cand.set(P, L.current());

    // Inductiveness fixpoint. Only clauses whose head carries a candidate
    // can be invalid (a `true` head validates the clause trivially); when a
    // candidate fails its clause, demote it and rescan, since the weakened
    // head may invalidate other candidates' clauses.
    const auto &Clauses = Ctx.system().clauses();
    bool Demoted = true;
    while (Demoted && !Ladders.empty()) {
      Demoted = false;
      for (size_t CI = 0; CI < Clauses.size() && !Ladders.empty(); ++CI) {
        const HornClause &C = Clauses[CI];
        if (!Ctx.isLive(CI) || !C.HeadPred)
          continue;
        const Predicate *Head = C.HeadPred->Pred;
        auto It = Ladders.find(Head);
        if (It == Ladders.end())
          continue;
        if (Ctx.expired()) {
          // Out of budget: nothing else gets verified this run.
          Stats.InvariantsRejected += Ladders.size();
          Stats.Check = Checker.stats();
          return;
        }
        ClauseCheckResult Check = Checker.check(CI, Cand);
        ++Stats.SmtChecks;
        if (Check.Status == ClauseStatus::Valid)
          continue;
        Ladder &L = It->second;
        ++L.Cur;
        ++Stats.InvariantsRejected;
        if (L.Cur < L.Levels.size()) {
          Cand.set(Head, L.current());
        } else {
          Ladders.erase(It);
          Cand.set(Head, TM.mkTrue());
        }
        Demoted = true;
      }
    }
    Stats.InvariantsVerified = Ladders.size();

    // A verified `false` resolves the predicate outright: its defining
    // clauses are valid under the seed and stay so when bodies strengthen,
    // and clauses using it have a permanently-false body conjunct.
    for (auto It = Ladders.begin(); It != Ladders.end();) {
      const Predicate *P = It->first;
      if (!It->second.current()->isFalse()) {
        ++It;
        continue;
      }
      Ctx.fix(P, TM.mkFalse());
      ++Stats.PredicatesResolved;
      for (size_t CI : Ctx.system().clausesWithHead(P))
        Stats.ClausesPruned += Ctx.prune(CI);
      for (size_t CI : Ctx.system().clausesUsing(P))
        Stats.ClausesPruned += Ctx.prune(CI);
      It = Ladders.erase(It);
    }

    // Publish the survivors, and the finite bounds of the states behind
    // each surviving level (the learner takes them as candidate
    // attributes). A conjunction rung draws on every domain it conjoined.
    for (const auto &[P, L] : Ladders) {
      Res.Invariants.emplace(P, L.current());
      const Ladder::Level &Lvl = L.level();
      if (Lvl.UsesOct)
        Stats.RelationalFound +=
            OctagonDomain::relationalFactCount(Ctx.Octagons[P->Index].Value);
      if (Lvl.UsesPoly) {
        const TemplatePolyhedron &PV = Ctx.Polyhedra[P->Index].Value;
        Stats.PolyhedraFacts += PV.relationalRowCount();
        // Hand the verified relational rows to the learner as linear
        // feature directions (the per-argument bounds below only carry
        // unary information).
        std::vector<std::vector<Rational>> Rows;
        for (size_t R = 0; R < PV.numRows(); ++R)
          if (PV.boundOfRow(R).Finite && PV.matrix()->Rows[R].arity() >= 2)
            Rows.push_back(PV.matrix()->Rows[R].Coef);
        if (!Rows.empty())
          Res.PolyRows.emplace(P, std::move(Rows));
      }
      std::vector<ArgBounds> Bs;
      for (size_t J = 0; J < P->arity(); ++J) {
        Interval I = Interval::top();
        if (Lvl.UsesPoly)
          I = I.meet(Ctx.Polyhedra[P->Index].Value.boundOf(J));
        if (Lvl.UsesOct)
          I = I.meet(Ctx.Octagons[P->Index].Value.boundOf(J));
        if (Lvl.UsesInterval)
          I = I.meet(Ctx.Intervals[P->Index].Value[J]);
        I = I.tightenIntegral();
        if (!I.hasLo() && !I.hasHi())
          continue;
        ArgBounds B;
        B.ArgIndex = J;
        B.HasLo = I.hasLo();
        B.HasHi = I.hasHi();
        if (B.HasLo)
          B.Lo = I.lo();
        if (B.HasHi)
          B.Hi = I.hi();
        Bs.push_back(std::move(B));
      }
      if (!Bs.empty())
        Res.Bounds.emplace(P, std::move(Bs));
    }

    // Query discharge: a query clause valid under the seed stays valid when
    // body interpretations strengthen (the CEGAR loop only ever conjoins
    // onto the seed), so it can be pruned. If every live query is valid the
    // seed is a full solution.
    bool AllQueriesValid = true;
    for (size_t CI = 0; CI < Clauses.size(); ++CI) {
      const HornClause &C = Clauses[CI];
      if (!Ctx.isLive(CI) || !C.isQuery())
        continue;
      if (Ctx.expired()) {
        Stats.Check = Checker.stats();
        return; // skip discharge; ProvedSat stays false
      }
      ClauseCheckResult Check = Checker.check(CI, Cand);
      ++Stats.SmtChecks;
      if (Check.Status == ClauseStatus::Valid)
        Stats.ClausesPruned += Ctx.prune(CI);
      else
        AllQueriesValid = false;
    }
    // All candidate-headed clauses are inductive, `true`-headed clauses are
    // trivially valid, and every query discharged: the seed is a solution.
    Res.ProvedSat = AllQueriesValid;
    Stats.Check = Checker.stats();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Manager
//===----------------------------------------------------------------------===//

void PassManager::run(AnalysisContext &Ctx) const {
  for (const std::unique_ptr<Pass> &P : Passes) {
    if (Ctx.expired())
      break;
    PassStats Stats;
    Stats.Name = P->name();
    Ctx.setStatsSink(&Stats);
    Timer Watch;
    P->run(Ctx);
    Stats.Seconds = Watch.elapsedSeconds();
    Ctx.setStatsSink(nullptr);
    Ctx.Result.Passes.push_back(std::move(Stats));
  }
  Ctx.Result.TimedOut = Ctx.expired();
}

AnalysisResult PassManager::run(const ChcSystem &System,
                                const AnalysisOptions &Opts) const {
  AnalysisContext Ctx(System, Opts);
  run(Ctx);
  return std::move(Ctx.Result);
}

PassManager PassManager::defaultPipeline(const AnalysisOptions &Opts) {
  PassManager PM;
  // Inlining runs first: it is the only pass that rewrites the system, and
  // everything after it (including the slicing passes) analyzes the clone.
  if (Opts.EnableInlining)
    PM.addPass(std::make_unique<InlinePass>());
  if (Opts.EnableSlicing) {
    PM.addPass(std::make_unique<FactReachabilityPass>());
    PM.addPass(std::make_unique<QueryConePass>());
  }
  if (Opts.EnableIntervals)
    PM.addPass(std::make_unique<IntervalPass>());
  if (Opts.EnableOctagons)
    PM.addPass(std::make_unique<OctagonPass>());
  if (Opts.EnablePolyhedra)
    PM.addPass(std::make_unique<PolyhedraPass>());
  PM.addPass(std::make_unique<InvariantVerifyPass>());
  return PM;
}

AnalysisResult analysis::analyzeSystem(const ChcSystem &System,
                                       const AnalysisOptions &Opts) {
  return PassManager::defaultPipeline(Opts).run(System, Opts);
}
