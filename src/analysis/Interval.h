//===- analysis/Interval.h - Integer interval abstract domain ---*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic interval abstract domain over the integers, with exact
/// rational bounds and explicit +-infinity. Used by the static pre-analysis
/// (`analysis/IntervalAnalysis.h`) to over-approximate the set of reachable
/// argument values of each unknown predicate before the CEGAR loop starts.
///
/// Lattice structure: `empty` is bottom, `top` is (-inf, +inf); `join` is
/// the lattice union, `meet` the intersection, and `widen` the standard
/// interval widening (unstable bounds jump to infinity), which guarantees
/// fixpoint convergence on recursive clause systems.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_INTERVAL_H
#define LA_ANALYSIS_INTERVAL_H

#include "support/Rational.h"

#include <string>

namespace la::analysis {

/// Largest integer <= V.
Rational floorOf(const Rational &V);
/// Smallest integer >= V.
Rational ceilOf(const Rational &V);

/// A (possibly unbounded, possibly empty) interval of rationals.
class Interval {
public:
  /// The full line (-inf, +inf).
  Interval() = default;

  static Interval top() { return Interval(); }
  static Interval empty();
  static Interval constant(Rational V);
  static Interval range(Rational Lo, Rational Hi);
  static Interval atLeast(Rational Lo);
  static Interval atMost(Rational Hi);

  bool isEmpty() const { return Empty; }
  bool isTop() const { return !Empty && !HasLo && !HasHi; }
  bool hasLo() const { return !Empty && HasLo; }
  bool hasHi() const { return !Empty && HasHi; }
  /// Finite bounds; only meaningful when hasLo()/hasHi().
  const Rational &lo() const { return Lo; }
  const Rational &hi() const { return Hi; }

  bool contains(const Rational &V) const;

  /// Lattice union / intersection.
  Interval join(const Interval &O) const;
  Interval meet(const Interval &O) const;
  /// Standard widening: bounds of \p Next that moved past this interval's
  /// bounds are dropped to infinity. `this` is the previous iterate.
  Interval widen(const Interval &Next) const;

  /// Abstract arithmetic (sound over-approximations).
  Interval operator+(const Interval &O) const;
  Interval scaled(const Rational &Factor) const;
  Interval negated() const { return scaled(Rational(-1)); }

  /// Rounds the bounds to the nearest enclosed integers (sound when the
  /// concrete values are known to be integral, as all CHC variables are).
  /// May produce the empty interval (e.g. [1/3, 2/3]).
  Interval tightenIntegral() const;

  bool operator==(const Interval &O) const;
  bool operator!=(const Interval &O) const { return !(*this == O); }

  std::string toString() const;

private:
  bool Empty = false;
  bool HasLo = false;
  bool HasHi = false;
  Rational Lo;
  Rational Hi;

  /// Canonicalises: a crossed pair of bounds collapses to the empty value.
  void normalize();
};

} // namespace la::analysis

#endif // LA_ANALYSIS_INTERVAL_H
