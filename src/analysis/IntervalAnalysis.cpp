//===- analysis/IntervalAnalysis.cpp - Interval domain over CHCs ----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/IntervalAnalysis.h"

#include "analysis/FixpointEngine.h"
#include "logic/LinearExpr.h"

#include <map>
#include <optional>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

/// Per-clause variable environment: absent variables are top.
using Env = std::map<const Term *, Interval, TermIdLess>;

Interval lookupVar(const Env &E, const Term *Var) {
  auto It = E.find(Var);
  return It == E.end() ? Interval::top() : It->second;
}

/// Meets \p NewI into the environment entry of \p Var; false on emptiness.
bool refineVar(Env &E, const Term *Var, const Interval &NewI) {
  Interval M = lookupVar(E, Var).meet(NewI);
  E[Var] = M;
  return !M.isEmpty();
}

/// Forward interval evaluation of a linear Int term.
Interval evalInterval(const Term *T, const Env &E) {
  switch (T->kind()) {
  case TermKind::IntConst:
    return Interval::constant(T->value());
  case TermKind::Var:
    return lookupVar(E, T);
  case TermKind::Add: {
    Interval Sum = Interval::constant(Rational(0));
    for (const Term *Op : T->operands())
      Sum = Sum + evalInterval(Op, E);
    return Sum;
  }
  case TermKind::Mul:
    return evalInterval(T->operand(0), E).scaled(T->value());
  case TermKind::Mod:
    // Euclidean remainder by a positive constant modulus.
    return Interval::range(Rational(0), T->value() - Rational(1));
  default:
    return Interval::top();
  }
}

/// Interval of `Atom.Expr` with variable \p Skip left out.
Interval evalExprWithout(const LinearExpr &Expr, const Term *Skip,
                         const Env &E) {
  Interval Sum = Interval::constant(Expr.constant());
  for (const auto &[Var, Coeff] : Expr.coefficients())
    if (Var != Skip)
      Sum = Sum + lookupVar(E, Var).scaled(Coeff);
  return Sum;
}

/// Refines the environment with one linear atom `Expr REL 0`. For each
/// variable `c*x + rest REL 0` is solved as `x REL' -rest/c`, bounding x by
/// the interval of the right-hand side (integer-tightened; Lt becomes a
/// strict-to-nonstrict shift by one).
bool refineAtom(const LinearAtom &Atom, Env &E) {
  for (const auto &[Var, Coeff] : Atom.Expr.coefficients()) {
    Interval Q = evalExprWithout(Atom.Expr, Var, E)
                     .scaled(Coeff.inverse() * Rational(-1));
    bool Flip = Coeff.signum() < 0; // flips <= into >= after division
    Interval Refined = Interval::top();
    switch (Atom.Rel) {
    case LinRel::Le:
      if (!Flip && Q.hasHi())
        Refined = Interval::atMost(floorOf(Q.hi()));
      else if (Flip && Q.hasLo())
        Refined = Interval::atLeast(ceilOf(Q.lo()));
      break;
    case LinRel::Lt:
      if (!Flip && Q.hasHi())
        Refined = Interval::atMost(ceilOf(Q.hi()) - Rational(1));
      else if (Flip && Q.hasLo())
        Refined = Interval::atLeast(floorOf(Q.lo()) + Rational(1));
      break;
    case LinRel::Eq:
      Refined = Q.tightenIntegral();
      break;
    }
    if (!refineVar(E, Var, Refined))
      return false;
  }
  return true;
}

/// Drops entries of \p A that are not in \p B and joins the common ones
/// (absent entries are top, and join with top is top).
void joinEnvInto(Env &A, const Env &B) {
  for (auto It = A.begin(); It != A.end();) {
    auto BI = B.find(It->first);
    if (BI == B.end()) {
      It = A.erase(It);
    } else {
      It->second = It->second.join(BI->second);
      ++It;
    }
  }
}

/// Refines the environment with a clause constraint: conjunctions refine
/// sequentially, disjunctions join their branch environments, negated
/// inequality atoms flip, and anything else is conservatively ignored.
/// Returns false when the constraint is infeasible under the environment.
bool refineWithConstraint(const Term *T, Env &E) {
  if (T->sort() != Sort::Bool)
    return true;
  switch (T->kind()) {
  case TermKind::BoolConst:
    return T->boolValue();
  case TermKind::And:
    for (const Term *Op : T->operands())
      if (!refineWithConstraint(Op, E))
        return false;
    return true;
  case TermKind::Or: {
    Env Joined;
    bool AnyFeasible = false;
    for (const Term *Op : T->operands()) {
      Env Branch = E;
      if (!refineWithConstraint(Op, Branch))
        continue;
      if (!AnyFeasible)
        Joined = std::move(Branch);
      else
        joinEnvInto(Joined, Branch);
      AnyFeasible = true;
    }
    if (!AnyFeasible)
      return false;
    E = std::move(Joined);
    return true;
  }
  case TermKind::Le:
  case TermKind::Lt:
  case TermKind::Eq: {
    std::optional<LinearAtom> Atom = LinearAtom::fromTerm(T);
    return !Atom || refineAtom(*Atom, E);
  }
  case TermKind::Not: {
    std::optional<LinearAtom> Atom = LinearAtom::fromTerm(T->operand(0));
    if (Atom && Atom->Rel != LinRel::Eq)
      return refineAtom(Atom->negated(), E);
    return true;
  }
  default:
    return true;
  }
}

/// Builds the variable environment of one clause from the body predicate
/// states and the constraint; false when the body is unreachable or the
/// constraint infeasible at the interval level. Skip-masked predicates are
/// pinned at reachable-top by the engine, so their applications fall
/// through the per-argument loop as unconstrained.
bool clauseEnv(const HornClause &C,
               const std::vector<IntervalState> &States, Env &E) {
  for (const PredApp &App : C.Body) {
    const IntervalState &S = States[App.Pred->Index];
    if (!S.Reachable)
      return false;
    for (size_t J = 0; J < App.Args.size(); ++J) {
      const Interval &AI = S.Value[J];
      if (AI.isTop())
        continue;
      std::optional<LinearExpr> LE = LinearExpr::fromTerm(App.Args[J]);
      if (!LE)
        continue;
      if (LE->isConstant()) {
        if (!AI.contains(LE->constant()))
          return false;
        continue;
      }
      if (LE->coefficients().size() == 1) {
        // Coeff*V + b in AI  ==>  V in (AI - b) / Coeff.
        const auto &[Var, Coeff] = *LE->coefficients().begin();
        Interval VI = (AI + Interval::constant(-LE->constant()))
                          .scaled(Coeff.inverse())
                          .tightenIntegral();
        if (!refineVar(E, Var, VI))
          return false;
      }
      // Multi-variable argument terms: no backward refinement (sound).
    }
  }
  // Two rounds so information discovered late reaches earlier conjuncts
  // (e.g. `x1 = x + 1` before any bound on x is known).
  for (int Round = 0; Round < 2; ++Round)
    if (!refineWithConstraint(C.Constraint, E))
      return false;
  return true;
}

} // namespace

std::optional<IntervalDomain::Value>
IntervalDomain::transfer(const HornClause &C,
                         const std::vector<DomainPredState<Value>> &States)
    const {
  Env E;
  if (!clauseEnv(C, States, E))
    return std::nullopt;
  Value NewArgs;
  NewArgs.reserve(C.HeadPred->Args.size());
  for (const Term *Arg : C.HeadPred->Args) {
    NewArgs.push_back(evalInterval(Arg, E).tightenIntegral());
    if (NewArgs.back().isEmpty())
      return std::nullopt;
  }
  return NewArgs;
}

bool IntervalDomain::join(Value &Into, const Value &From) const {
  bool Grew = false;
  for (size_t J = 0; J < Into.size(); ++J) {
    Interval Joined = Into[J].join(From[J]);
    if (!(Joined == Into[J])) {
      Into[J] = std::move(Joined);
      Grew = true;
    }
  }
  return Grew;
}

void IntervalDomain::widen(Value &Into, const Value &Joined) const {
  for (size_t J = 0; J < Into.size(); ++J)
    Into[J] = Into[J].widen(Joined[J]);
}

bool IntervalDomain::narrow(Value &Into, const Value &Step) const {
  bool Narrowed = false;
  for (size_t J = 0; J < Into.size(); ++J) {
    Interval M = Into[J].meet(Step[J]);
    if (M.isEmpty() || M == Into[J])
      continue;
    Into[J] = std::move(M);
    Narrowed = true;
  }
  return Narrowed;
}

bool IntervalDomain::isTop(const Value &V) const {
  for (const Interval &I : V)
    if (I.hasLo() || I.hasHi())
      return false;
  return true;
}

const Term *IntervalDomain::toInvariant(TermManager &TM, const Predicate *P,
                                        const Value &V) const {
  std::vector<const Term *> Conj;
  for (size_t J = 0; J < V.size(); ++J) {
    Interval I = V[J].tightenIntegral();
    if (I.isEmpty())
      return TM.mkFalse();
    if (I.hasLo())
      Conj.push_back(TM.mkGe(P->Params[J], TM.mkIntConst(I.lo())));
    if (I.hasHi())
      Conj.push_back(TM.mkLe(P->Params[J], TM.mkIntConst(I.hi())));
  }
  return TM.mkAnd(std::move(Conj));
}

std::vector<IntervalState>
analysis::runIntervalAnalysis(const AnalysisContext &Ctx,
                              FixpointTelemetry *Telemetry) {
  return runDomainAnalysis(IntervalDomain(), Ctx, Ctx.Opts.Intervals,
                           Telemetry);
}

const Term *analysis::intervalInvariant(TermManager &TM, const Predicate *P,
                                        const IntervalState &State) {
  return domainInvariant(IntervalDomain(), TM, P, State);
}
