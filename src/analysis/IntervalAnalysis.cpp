//===- analysis/IntervalAnalysis.cpp - Interval fixpoint over CHCs --------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/IntervalAnalysis.h"

#include "logic/LinearExpr.h"

#include <map>
#include <optional>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

/// Per-clause variable environment: absent variables are top.
using Env = std::map<const Term *, Interval, TermIdLess>;

Interval lookupVar(const Env &E, const Term *Var) {
  auto It = E.find(Var);
  return It == E.end() ? Interval::top() : It->second;
}

/// Meets \p NewI into the environment entry of \p Var; false on emptiness.
bool refineVar(Env &E, const Term *Var, const Interval &NewI) {
  Interval M = lookupVar(E, Var).meet(NewI);
  E[Var] = M;
  return !M.isEmpty();
}

/// Forward interval evaluation of a linear Int term.
Interval evalInterval(const Term *T, const Env &E) {
  switch (T->kind()) {
  case TermKind::IntConst:
    return Interval::constant(T->value());
  case TermKind::Var:
    return lookupVar(E, T);
  case TermKind::Add: {
    Interval Sum = Interval::constant(Rational(0));
    for (const Term *Op : T->operands())
      Sum = Sum + evalInterval(Op, E);
    return Sum;
  }
  case TermKind::Mul:
    return evalInterval(T->operand(0), E).scaled(T->value());
  case TermKind::Mod:
    // Euclidean remainder by a positive constant modulus.
    return Interval::range(Rational(0), T->value() - Rational(1));
  default:
    return Interval::top();
  }
}

/// Interval of `Atom.Expr` with variable \p Skip left out.
Interval evalExprWithout(const LinearExpr &Expr, const Term *Skip,
                         const Env &E) {
  Interval Sum = Interval::constant(Expr.constant());
  for (const auto &[Var, Coeff] : Expr.coefficients())
    if (Var != Skip)
      Sum = Sum + lookupVar(E, Var).scaled(Coeff);
  return Sum;
}

/// Refines the environment with one linear atom `Expr REL 0`. For each
/// variable `c*x + rest REL 0` is solved as `x REL' -rest/c`, bounding x by
/// the interval of the right-hand side (integer-tightened; Lt becomes a
/// strict-to-nonstrict shift by one).
bool refineAtom(const LinearAtom &Atom, Env &E) {
  for (const auto &[Var, Coeff] : Atom.Expr.coefficients()) {
    Interval Q = evalExprWithout(Atom.Expr, Var, E)
                     .scaled(Coeff.inverse() * Rational(-1));
    bool Flip = Coeff.signum() < 0; // flips <= into >= after division
    Interval Refined = Interval::top();
    switch (Atom.Rel) {
    case LinRel::Le:
      if (!Flip && Q.hasHi())
        Refined = Interval::atMost(floorOf(Q.hi()));
      else if (Flip && Q.hasLo())
        Refined = Interval::atLeast(ceilOf(Q.lo()));
      break;
    case LinRel::Lt:
      if (!Flip && Q.hasHi())
        Refined = Interval::atMost(ceilOf(Q.hi()) - Rational(1));
      else if (Flip && Q.hasLo())
        Refined = Interval::atLeast(floorOf(Q.lo()) + Rational(1));
      break;
    case LinRel::Eq:
      Refined = Q.tightenIntegral();
      break;
    }
    if (!refineVar(E, Var, Refined))
      return false;
  }
  return true;
}

/// Drops entries of \p A that are not in \p B and joins the common ones
/// (absent entries are top, and join with top is top).
void joinEnvInto(Env &A, const Env &B) {
  for (auto It = A.begin(); It != A.end();) {
    auto BI = B.find(It->first);
    if (BI == B.end()) {
      It = A.erase(It);
    } else {
      It->second = It->second.join(BI->second);
      ++It;
    }
  }
}

/// Refines the environment with a clause constraint: conjunctions refine
/// sequentially, disjunctions join their branch environments, negated
/// inequality atoms flip, and anything else is conservatively ignored.
/// Returns false when the constraint is infeasible under the environment.
bool refineWithConstraint(const Term *T, Env &E) {
  if (T->sort() != Sort::Bool)
    return true;
  switch (T->kind()) {
  case TermKind::BoolConst:
    return T->boolValue();
  case TermKind::And:
    for (const Term *Op : T->operands())
      if (!refineWithConstraint(Op, E))
        return false;
    return true;
  case TermKind::Or: {
    Env Joined;
    bool AnyFeasible = false;
    for (const Term *Op : T->operands()) {
      Env Branch = E;
      if (!refineWithConstraint(Op, Branch))
        continue;
      if (!AnyFeasible)
        Joined = std::move(Branch);
      else
        joinEnvInto(Joined, Branch);
      AnyFeasible = true;
    }
    if (!AnyFeasible)
      return false;
    E = std::move(Joined);
    return true;
  }
  case TermKind::Le:
  case TermKind::Lt:
  case TermKind::Eq: {
    std::optional<LinearAtom> Atom = LinearAtom::fromTerm(T);
    return !Atom || refineAtom(*Atom, E);
  }
  case TermKind::Not: {
    std::optional<LinearAtom> Atom = LinearAtom::fromTerm(T->operand(0));
    if (Atom && Atom->Rel != LinRel::Eq)
      return refineAtom(Atom->negated(), E);
    return true;
  }
  default:
    return true;
  }
}

/// Builds the variable environment of one clause from the body predicate
/// states and the constraint; false when the body is unreachable or the
/// constraint infeasible at the interval level.
bool clauseEnv(const HornClause &C, const std::vector<PredIntervalState> &States,
               const std::vector<char> &SkipPred, Env &E) {
  for (const PredApp &App : C.Body) {
    size_t PI = App.Pred->Index;
    if (SkipPred[PI])
      continue; // resolved elsewhere: treated as unconstrained
    const PredIntervalState &S = States[PI];
    if (!S.Reachable)
      return false;
    for (size_t J = 0; J < App.Args.size(); ++J) {
      const Interval &AI = S.Args[J];
      if (AI.isTop())
        continue;
      std::optional<LinearExpr> LE = LinearExpr::fromTerm(App.Args[J]);
      if (!LE)
        continue;
      if (LE->isConstant()) {
        if (!AI.contains(LE->constant()))
          return false;
        continue;
      }
      if (LE->coefficients().size() == 1) {
        // Coeff*V + b in AI  ==>  V in (AI - b) / Coeff.
        const auto &[Var, Coeff] = *LE->coefficients().begin();
        Interval VI = (AI + Interval::constant(-LE->constant()))
                          .scaled(Coeff.inverse())
                          .tightenIntegral();
        if (!refineVar(E, Var, VI))
          return false;
      }
      // Multi-variable argument terms: no backward refinement (sound).
    }
  }
  // Two rounds so information discovered late reaches earlier conjuncts
  // (e.g. `x1 = x + 1` before any bound on x is known).
  for (int Round = 0; Round < 2; ++Round)
    if (!refineWithConstraint(C.Constraint, E))
      return false;
  return true;
}

} // namespace

std::vector<PredIntervalState>
analysis::runIntervalAnalysis(const ChcSystem &System,
                              const std::vector<char> &LiveClause,
                              const std::vector<char> &SkipPred,
                              const IntervalAnalysisOptions &Opts) {
  size_t N = System.predicates().size();
  std::vector<PredIntervalState> States(N);
  for (size_t I = 0; I < N; ++I)
    States[I].Args.assign(System.predicates()[I]->arity(), Interval::empty());

  const auto &Clauses = System.clauses();
  // Head intervals one clause contributes under the current states, or
  // nothing when the clause is dead, masked, or infeasible at this level.
  auto clauseContribution =
      [&](const HornClause &C, size_t CI,
          const std::vector<PredIntervalState> &Current)
      -> std::optional<std::vector<Interval>> {
    if ((!LiveClause.empty() && !LiveClause[CI]) || !C.HeadPred ||
        SkipPred[C.HeadPred->Pred->Index])
      return std::nullopt;
    Env E;
    if (!clauseEnv(C, Current, SkipPred, E))
      return std::nullopt;
    std::vector<Interval> NewArgs;
    NewArgs.reserve(C.HeadPred->Args.size());
    for (const Term *Arg : C.HeadPred->Args) {
      NewArgs.push_back(evalInterval(Arg, E).tightenIntegral());
      if (NewArgs.back().isEmpty())
        return std::nullopt;
    }
    return NewArgs;
  };

  bool Changed = true;
  for (size_t Sweep = 0; Changed && Sweep < Opts.MaxSweeps; ++Sweep) {
    Changed = false;
    for (size_t CI = 0; CI < Clauses.size(); ++CI) {
      const HornClause &C = Clauses[CI];
      std::optional<std::vector<Interval>> NewArgs =
          clauseContribution(C, CI, States);
      if (!NewArgs)
        continue;

      PredIntervalState &S = States[C.HeadPred->Pred->Index];
      if (!S.Reachable) {
        S.Reachable = true;
        S.Args = std::move(*NewArgs);
        Changed = true;
        continue;
      }
      bool Grew = false;
      for (size_t J = 0; J < NewArgs->size(); ++J)
        Grew |= S.Args[J].join((*NewArgs)[J]) != S.Args[J];
      if (!Grew)
        continue;
      ++S.Updates;
      bool Widen = S.Updates > Opts.WideningDelay;
      for (size_t J = 0; J < NewArgs->size(); ++J) {
        Interval Joined = S.Args[J].join((*NewArgs)[J]);
        S.Args[J] = Widen ? S.Args[J].widen(Joined) : Joined;
      }
      Changed = true;
    }
  }

  // Descending (narrowing) passes: recompute every state in one step from
  // the widened fixpoint and meet the result back in. This recovers bounds
  // widening overshot (a loop guard's implied upper bound). Kept defensive
  // -- never narrows to bottom -- and harmless regardless: the verify pass
  // re-proves every candidate invariant before anything trusts it.
  for (size_t Pass = 0; Pass < Opts.NarrowingPasses; ++Pass) {
    std::vector<PredIntervalState> Step(N);
    for (size_t I = 0; I < N; ++I)
      Step[I].Args.assign(System.predicates()[I]->arity(), Interval::empty());
    for (size_t CI = 0; CI < Clauses.size(); ++CI) {
      const HornClause &C = Clauses[CI];
      std::optional<std::vector<Interval>> NewArgs =
          clauseContribution(C, CI, States);
      if (!NewArgs)
        continue;
      PredIntervalState &S = Step[C.HeadPred->Pred->Index];
      if (!S.Reachable) {
        S.Reachable = true;
        S.Args = std::move(*NewArgs);
        continue;
      }
      for (size_t J = 0; J < NewArgs->size(); ++J)
        S.Args[J] = S.Args[J].join((*NewArgs)[J]);
    }
    bool Narrowed = false;
    for (size_t I = 0; I < N; ++I) {
      if (!States[I].Reachable || !Step[I].Reachable)
        continue;
      for (size_t J = 0; J < States[I].Args.size(); ++J) {
        Interval M = States[I].Args[J].meet(Step[I].Args[J]);
        if (M.isEmpty() || M == States[I].Args[J])
          continue;
        States[I].Args[J] = M;
        Narrowed = true;
      }
    }
    if (!Narrowed)
      break;
  }
  return States;
}

const Term *analysis::intervalInvariant(TermManager &TM, const Predicate *P,
                                        const PredIntervalState &State) {
  if (!State.Reachable)
    return TM.mkFalse();
  std::vector<const Term *> Conj;
  for (size_t J = 0; J < State.Args.size(); ++J) {
    Interval I = State.Args[J].tightenIntegral();
    if (I.isEmpty())
      return TM.mkFalse();
    if (I.hasLo())
      Conj.push_back(TM.mkGe(P->Params[J], TM.mkIntConst(I.lo())));
    if (I.hasHi())
      Conj.push_back(TM.mkLe(P->Params[J], TM.mkIntConst(I.hi())));
  }
  if (Conj.empty())
    return nullptr;
  return TM.mkAnd(std::move(Conj));
}
