//===- analysis/PassManager.h - Static pre-analysis pipeline ----*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static pre-analysis pipeline that runs over a parsed `chc::ChcSystem`
/// before the data-driven CEGAR loop starts (cf. the symbolic front of
/// Chronosymbolic Learning and the preprocessing stage of CHC portfolio
/// solvers). Four passes, each timed and counted:
///
///   1. fact-reach:  predicates with no derivation at all are resolved to
///      `false` and every clause mentioning them is pruned;
///   2. query-cone:  predicates outside the cone of influence of the query
///      clauses are resolved to `true` and their defining clauses pruned;
///   3. intervals:   an interval abstract interpreter with widening
///      computes candidate per-argument bounds for the surviving predicates;
///   4. verify:      every candidate invariant is re-proved inductive with
///      `chc::checkClause` (candidates that fail are dropped), verified
///      `false` predicates are resolved, and query clauses already valid
///      under the verified seed are discharged.
///
/// Soundness is by construction: nothing unverified leaves this module, so
/// downstream consumers (the CEGAR loop seeding its interpretations, the
/// decision-tree learner taking candidate attributes) may trust the result
/// blindly. The soundness arguments are spelled out in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_PASSMANAGER_H
#define LA_ANALYSIS_PASSMANAGER_H

#include "analysis/IntervalAnalysis.h"
#include "chc/ChcCheck.h"
#include "support/Timer.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace la::analysis {

/// Counters of one pass execution (also used merged across runs by the
/// benchmark harness).
struct PassStats {
  std::string Name;
  double Seconds = 0;
  size_t ClausesPruned = 0;
  size_t PredicatesResolved = 0;
  size_t BoundsFound = 0;
  size_t InvariantsVerified = 0;
  size_t InvariantsRejected = 0;
  size_t SmtChecks = 0;
  /// Incremental clause-check counters (populated by passes that go through
  /// chc::ClauseCheckContext, currently the verify pass).
  chc::CheckStats Check;

  /// Sums the counters of \p O into this (the name is kept).
  void merge(const PassStats &O);
  std::string toString() const;
};

/// Configuration of the pipeline.
struct AnalysisOptions {
  bool EnableSlicing = true;
  bool EnableIntervals = true;
  IntervalAnalysisOptions Intervals;
  /// SMT budget for the per-invariant verification checks.
  smt::SmtSolver::Options Smt;
  /// Soft wall-clock cap for the whole pipeline (0 = unlimited). On expiry
  /// the pipeline stops early; partial results remain sound because every
  /// pass only adds independently verified facts.
  double TimeoutSeconds = 0;
};

/// Finite per-argument bounds of one predicate, the shape handed to the
/// decision-tree learner as candidate attributes.
struct ArgBounds {
  size_t ArgIndex = 0;
  bool HasLo = false;
  bool HasHi = false;
  Rational Lo;
  Rational Hi;
};

/// Everything the pipeline proved about a system.
struct AnalysisResult {
  /// Per-clause liveness mask: pruned clauses are valid under `Fixed` plus
  /// any downstream strengthening, so the solver never re-checks them.
  std::vector<char> LiveClause;
  /// Statically resolved predicates (interpretation `true` or `false`);
  /// no live clause mentions them.
  std::map<const chc::Predicate *, const Term *> Fixed;
  /// Verified inductive interval invariants for live predicates. Sound
  /// over-approximations: every derivable fact satisfies them.
  std::map<const chc::Predicate *, const Term *> Invariants;
  /// The finite bounds behind `Invariants`, as learner-feature fodder.
  std::map<const chc::Predicate *, std::vector<ArgBounds>> Bounds;
  /// True when the verified seed already discharges every query clause:
  /// `Fixed` + `Invariants` is a full solution and no learning is needed.
  bool ProvedSat = false;
  /// Per-pass statistics, in execution order.
  std::vector<PassStats> Passes;

  size_t numLiveClauses() const;
  size_t clausesPruned() const { return LiveClause.size() - numLiveClauses(); }
  size_t predicatesResolved() const { return Fixed.size(); }
  size_t boundsFound() const;
  double totalSeconds() const;
  size_t smtChecks() const;

  /// Empty result treating every clause as live (analysis disabled).
  static AnalysisResult allLive(const chc::ChcSystem &System);

  /// Multi-line human-readable report for benches and examples.
  std::string report() const;
};

/// Shared mutable state the passes operate on.
struct AnalysisContext {
  const chc::ChcSystem &System;
  TermManager &TM;
  const AnalysisOptions &Opts;
  Deadline Clock;
  AnalysisResult Result;
  /// Raw interval states, populated by the interval pass for the verifier.
  std::vector<PredIntervalState> Intervals;

  AnalysisContext(const chc::ChcSystem &System, const AnalysisOptions &Opts);

  bool isLive(size_t ClauseIdx) const { return Result.LiveClause[ClauseIdx]; }
  /// Prunes a clause; returns true when it was live before.
  bool prune(size_t ClauseIdx);
  bool isFixed(const chc::Predicate *P) const { return Result.Fixed.count(P); }
};

/// One analysis pass. Passes must only add *verified or construction-sound*
/// facts to the context result; pruning must preserve every solution of the
/// live subsystem as a solution of the full system.
class Pass {
public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual void run(AnalysisContext &Ctx, PassStats &Stats) = 0;
};

/// Runs a pass sequence with per-pass timing and a shared deadline.
class PassManager {
public:
  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  AnalysisResult run(const chc::ChcSystem &System,
                     const AnalysisOptions &Opts) const;

  /// The default pipeline described in the file comment.
  static PassManager defaultPipeline(const AnalysisOptions &Opts);

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

/// Convenience: default pipeline over \p System.
AnalysisResult analyzeSystem(const chc::ChcSystem &System,
                             const AnalysisOptions &Opts = {});

} // namespace la::analysis

#endif // LA_ANALYSIS_PASSMANAGER_H
