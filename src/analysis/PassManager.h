//===- analysis/PassManager.h - Static pre-analysis pipeline ----*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static pre-analysis pipeline that runs over a parsed `chc::ChcSystem`
/// before the data-driven CEGAR loop starts (cf. the symbolic front of
/// Chronosymbolic Learning and the preprocessing stage of CHC portfolio
/// solvers). Six passes, each timed and counted:
///
///   0. inline:      non-recursive single-definition predicates are inlined
///      into their call sites and eliminated; the remaining passes (and the
///      CEGAR loop) analyze the transformed system (`analysis/InlinePass.h`,
///      DESIGN.md §10);
///   1. fact-reach:  predicates with no derivation at all are resolved to
///      `false` and every clause mentioning them is pruned;
///   2. query-cone:  predicates outside the cone of influence of the query
///      clauses are resolved to `true` and their defining clauses pruned;
///   3. intervals:   the interval abstract domain computes candidate
///      per-argument bounds for the surviving predicates;
///   4. octagons:    the relational octagon domain computes candidate
///      `±x ± y <= c` facts (the `x >= y` shapes the paper's Fig. 1 family
///      needs and intervals cannot express);
///   5. verify:      every candidate invariant is re-proved inductive with
///      `chc::checkClause`; a failing octagon candidate falls back to the
///      predicate's interval candidate before being dropped entirely.
///      Verified `false` predicates are resolved, and query clauses already
///      valid under the verified seed are discharged.
///
/// Soundness is by construction: nothing unverified leaves this module, so
/// downstream consumers (the CEGAR loop seeding its interpretations, the
/// decision-tree learner taking candidate attributes) may trust the result
/// blindly. The soundness arguments are spelled out in DESIGN.md §9.
///
/// All shared state lives in `AnalysisContext`
/// (`analysis/AnalysisContext.h`); passes communicate only through it.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_PASSMANAGER_H
#define LA_ANALYSIS_PASSMANAGER_H

#include "analysis/AnalysisContext.h"

#include <memory>
#include <string>
#include <vector>

namespace la::analysis {

/// One analysis pass. Passes must only add *verified or construction-sound*
/// facts to the context result; pruning must preserve every solution of the
/// live subsystem as a solution of the full system. Counters go to
/// `Ctx.stats()`, which the manager points at the pass's own `PassStats`
/// for the duration of `run`.
class Pass {
public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual void run(AnalysisContext &Ctx) = 0;
};

/// Runs a pass sequence with per-pass timing and a shared deadline.
class PassManager {
public:
  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  AnalysisResult run(const chc::ChcSystem &System,
                     const AnalysisOptions &Opts) const;
  /// Runs the passes over a caller-prepared context (the context keeps the
  /// raw domain states afterwards).
  void run(AnalysisContext &Ctx) const;

  /// The default pipeline described in the file comment.
  static PassManager defaultPipeline(const AnalysisOptions &Opts);

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

/// Convenience: default pipeline over \p System.
AnalysisResult analyzeSystem(const chc::ChcSystem &System,
                             const AnalysisOptions &Opts = {});

} // namespace la::analysis

#endif // LA_ANALYSIS_PASSMANAGER_H
