//===- analysis/FixpointEngine.h - Clause-wise fixpoint driver --*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The domain-parametric clause-wise abstract-interpretation driver: chaotic
/// ascending sweeps with delayed widening, followed by descending
/// (narrowing) passes, over the live clauses of an `AnalysisContext`. The
/// driver owns every piece of iteration strategy; domains only supply the
/// lattice and the transfer function (`analysis/AbstractDomain.h`).
///
/// Early exits (deadline expiry, the `MaxSweeps` cap) can return a
/// non-fixpoint: that is fine because every emitted invariant is a candidate
/// only — the verify pass re-proves it with `chc::checkClause` before any
/// consumer may trust it.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ANALYSIS_FIXPOINTENGINE_H
#define LA_ANALYSIS_FIXPOINTENGINE_H

#include "analysis/AnalysisContext.h"

#include <optional>
#include <utility>
#include <vector>

namespace la::analysis {

/// Runs the clause-wise fixpoint of \p Dom over the live clauses of
/// \p Ctx and returns one state per predicate index. Predicates masked by
/// `Ctx.SkipPred` stay pinned at reachable-top (unconstrained) and are never
/// updated; their invariants come from `Ctx.Result.Fixed` instead.
/// \p Telemetry, when non-null, receives the sweep count and whether the
/// `MaxSweeps` safety net fired (see `FixpointTelemetry`).
template <AbstractDomain D>
std::vector<DomainPredState<typename D::Value>>
runDomainAnalysis(const D &Dom, const AnalysisContext &Ctx,
                  const FixpointOptions &Opts,
                  FixpointTelemetry *Telemetry = nullptr) {
  using Value = typename D::Value;
  using State = DomainPredState<Value>;
  const auto &Preds = Ctx.system().predicates();
  const auto &Clauses = Ctx.system().clauses();
  size_t N = Preds.size();

  auto Masked = [&](size_t PI) {
    return !Ctx.SkipPred.empty() && Ctx.SkipPred[PI];
  };

  std::vector<State> States(N);
  for (size_t I = 0; I < N; ++I) {
    if (Masked(I)) {
      States[I].Reachable = true;
      States[I].Value = Dom.top(Preds[I]);
    } else {
      States[I].Value = Dom.bottom(Preds[I]);
    }
  }

  // Head value one clause contributes under the current states, or nothing
  // when the clause is dead, headless, masked, or infeasible at this
  // abstraction.
  auto Contribution = [&](size_t CI) -> std::optional<Value> {
    const chc::HornClause &C = Clauses[CI];
    if (!Ctx.isLive(CI) || !C.HeadPred || Masked(C.HeadPred->Pred->Index))
      return std::nullopt;
    return Dom.transfer(C, States);
  };

  // Chaotic ascending sweeps (Gauss-Seidel: updates are visible within the
  // sweep), with widening once a predicate has been joined often enough.
  bool Changed = true;
  size_t Sweep = 0;
  for (; Changed && Sweep < Opts.MaxSweeps && !Ctx.expired(); ++Sweep) {
    Changed = false;
    for (size_t CI = 0; CI < Clauses.size(); ++CI) {
      std::optional<Value> V = Contribution(CI);
      if (!V)
        continue;
      State &S = States[Clauses[CI].HeadPred->Pred->Index];
      if (!S.Reachable) {
        S.Reachable = true;
        S.Value = std::move(*V);
        Changed = true;
        continue;
      }
      Value Joined = S.Value;
      if (!Dom.join(Joined, *V))
        continue;
      ++S.Updates;
      if (S.Updates > Opts.WideningDelay)
        Dom.widen(S.Value, Joined);
      else
        S.Value = std::move(Joined);
      Changed = true;
    }
  }
  if (Telemetry) {
    Telemetry->Sweeps = Sweep;
    // `Changed` still set at exit means the states had not stabilized; that
    // is a cap hit only when the cap (not the deadline) ended the loop.
    Telemetry->HitSweepCap = Changed && Sweep >= Opts.MaxSweeps;
  }

  // Descending passes: recompute every state in one step from the widened
  // fixpoint and narrow the result back in. This recovers facts widening
  // overshot (a loop guard's implied bound). Domains guarantee narrowing
  // never reaches bottom, so the states stay safe to render.
  for (size_t Pass = 0;
       Pass < Opts.NarrowingPasses && !Ctx.expired(); ++Pass) {
    std::vector<State> Step(N);
    for (size_t I = 0; I < N; ++I)
      Step[I].Value = Dom.bottom(Preds[I]);
    for (size_t CI = 0; CI < Clauses.size(); ++CI) {
      std::optional<Value> V = Contribution(CI);
      if (!V)
        continue;
      State &S = Step[Clauses[CI].HeadPred->Pred->Index];
      if (!S.Reachable) {
        S.Reachable = true;
        S.Value = std::move(*V);
      } else {
        Dom.join(S.Value, *V);
      }
    }
    bool Narrowed = false;
    for (size_t I = 0; I < N; ++I) {
      if (Masked(I) || !States[I].Reachable || !Step[I].Reachable)
        continue;
      Narrowed |= Dom.narrow(States[I].Value, Step[I].Value);
    }
    if (!Narrowed)
      break;
  }
  return States;
}

} // namespace la::analysis

#endif // LA_ANALYSIS_FIXPOINTENGINE_H
