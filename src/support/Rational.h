//===- support/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over BigInt, always stored in lowest terms with a positive
/// denominator. These are the scalars of the simplex tableau, of linear
/// atoms, and of sample points.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SUPPORT_RATIONAL_H
#define LA_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

#include <cassert>
#include <string>

namespace la {

/// Exact rational number.
///
/// Invariant: gcd(|Num|, Den) == 1 and Den > 0; zero is 0/1.
class Rational {
public:
  Rational() : Den(1) {}
  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(BigInt Numerator) : Num(std::move(Numerator)), Den(1) {}
  Rational(BigInt Numerator, BigInt Denominator);

  /// Parses "a", "-a" or "a/b" in decimal.
  static std::optional<Rational> fromString(const std::string &Text);

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isInteger() const { return Den.isOne(); }
  bool isNegative() const { return Num.isNegative(); }
  int signum() const { return Num.signum(); }

  Rational operator-() const;
  Rational abs() const;
  /// Multiplicative inverse; asserts the value is nonzero.
  Rational inverse() const;

  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  /// Asserts RHS is nonzero.
  Rational operator/(const Rational &RHS) const;

  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }
  Rational &operator*=(const Rational &RHS) { return *this = *this * RHS; }
  Rational &operator/=(const Rational &RHS) { return *this = *this / RHS; }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const Rational &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const Rational &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const Rational &RHS) const { return compare(RHS) >= 0; }

  /// Three-way comparison.
  int compare(const Rational &RHS) const;

  /// Largest integer <= value.
  BigInt floor() const;
  /// Smallest integer >= value.
  BigInt ceil() const;

  double toDouble() const;
  std::string toString() const;
  size_t hash() const;

private:
  BigInt Num;
  BigInt Den;
};

} // namespace la

#endif // LA_SUPPORT_RATIONAL_H
