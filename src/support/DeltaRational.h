//===- support/DeltaRational.h - Rationals with infinitesimals --*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Values of the form `R + K * delta` for an infinitesimal positive delta,
/// used by the simplex theory solver to represent strict bounds: `x > c`
/// becomes `x >= c + delta`. Comparison is lexicographic on (R, K).
///
//===----------------------------------------------------------------------===//

#ifndef LA_SUPPORT_DELTARATIONAL_H
#define LA_SUPPORT_DELTARATIONAL_H

#include "support/Rational.h"

namespace la {

/// A rational plus an integer multiple of a symbolic infinitesimal.
class DeltaRational {
public:
  DeltaRational() = default;
  DeltaRational(Rational Real) : Real(std::move(Real)) {}
  DeltaRational(Rational Real, Rational Delta)
      : Real(std::move(Real)), Delta(std::move(Delta)) {}

  const Rational &real() const { return Real; }
  const Rational &delta() const { return Delta; }

  bool isRational() const { return Delta.isZero(); }

  DeltaRational operator+(const DeltaRational &RHS) const {
    return DeltaRational(Real + RHS.Real, Delta + RHS.Delta);
  }
  DeltaRational operator-(const DeltaRational &RHS) const {
    return DeltaRational(Real - RHS.Real, Delta - RHS.Delta);
  }
  DeltaRational operator-() const { return DeltaRational(-Real, -Delta); }
  /// Scales both components by a rational factor.
  DeltaRational operator*(const Rational &Factor) const {
    return DeltaRational(Real * Factor, Delta * Factor);
  }

  DeltaRational &operator+=(const DeltaRational &RHS) {
    Real += RHS.Real;
    Delta += RHS.Delta;
    return *this;
  }
  DeltaRational &operator-=(const DeltaRational &RHS) {
    Real -= RHS.Real;
    Delta -= RHS.Delta;
    return *this;
  }

  int compare(const DeltaRational &RHS) const {
    int C = Real.compare(RHS.Real);
    if (C != 0)
      return C;
    return Delta.compare(RHS.Delta);
  }

  bool operator==(const DeltaRational &RHS) const { return compare(RHS) == 0; }
  bool operator!=(const DeltaRational &RHS) const { return compare(RHS) != 0; }
  bool operator<(const DeltaRational &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const DeltaRational &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const DeltaRational &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const DeltaRational &RHS) const { return compare(RHS) >= 0; }

  std::string toString() const {
    if (Delta.isZero())
      return Real.toString();
    return Real.toString() + (Delta.isNegative() ? "" : "+") +
           Delta.toString() + "d";
  }

private:
  Rational Real;
  Rational Delta;
};

} // namespace la

#endif // LA_SUPPORT_DELTARATIONAL_H
