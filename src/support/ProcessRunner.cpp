//===- support/ProcessRunner.cpp - Forked worker with hard limits ---------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ProcessRunner.h"

#include "support/Timer.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <new>

#include <csignal>
#include <poll.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace la {

namespace {

/// Pipe payload header: magic then u64 little-endian byte count.
constexpr char Magic[4] = {'L', 'A', 'P', 'R'};

/// Child exit codes understood by the parent-side classifier.
constexpr int ExitOk = 0;
constexpr int ExitException = 3;
constexpr int ExitBadAlloc = 4;

/// write(2) the whole buffer, retrying on EINTR and short writes. Returns
/// false on any hard error (e.g. the parent died and closed the pipe).
bool writeAll(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

void applyRlimits(const ProcessLimits &Limits) {
  if (Limits.CpuSeconds > 0) {
    // Soft limit delivers SIGXCPU at the budget; the hard limit two
    // seconds later delivers SIGKILL in case the child ignores it.
    auto Soft = static_cast<rlim_t>(Limits.CpuSeconds < 1 ? 1
                                                          : Limits.CpuSeconds);
    struct rlimit RL = {Soft, Soft + 2};
    ::setrlimit(RLIMIT_CPU, &RL);
  }
  if (Limits.MemoryBytes > 0) {
    auto Cap = static_cast<rlim_t>(Limits.MemoryBytes);
    struct rlimit RL = {Cap, Cap};
    ::setrlimit(RLIMIT_AS, &RL);
  }
}

/// Child side: run the work, ship the result, and _exit without running
/// atexit handlers (the parent's handlers must not run twice, and the child
/// intentionally leaks everything — the address space is about to go away).
[[noreturn]] void runChild(int Fd, const std::function<std::string()> &Work,
                           const ProcessLimits &Limits) {
  applyRlimits(Limits);
  std::string Payload;
  int Code = ExitOk;
  try {
    Payload = Work();
  } catch (const std::bad_alloc &) {
    Payload = "std::bad_alloc";
    Code = ExitBadAlloc;
  } catch (const std::exception &E) {
    const char *What = E.what();
    Payload = (What != nullptr && *What != '\0')
                  ? What
                  : "engine threw an exception with no message";
    Code = ExitException;
  } catch (...) {
    Payload = "engine threw a non-standard exception";
    Code = ExitException;
  }
  uint64_t Len = Payload.size();
  bool Ok = writeAll(Fd, Magic, sizeof(Magic)) &&
            writeAll(Fd, &Len, sizeof(Len)) &&
            writeAll(Fd, Payload.data(), Payload.size());
  ::close(Fd);
  _exit(Ok ? Code : ExitException);
}

/// Why the parent sent SIGKILL, if it did.
enum class KillReason { None, Deadline, Cancelled };

} // namespace

const char *toString(LaneOutcome O) {
  switch (O) {
  case LaneOutcome::Completed:
    return "completed";
  case LaneOutcome::Failed:
    return "failed";
  case LaneOutcome::Crashed:
    return "crashed";
  case LaneOutcome::TimedOut:
    return "timed-out";
  case LaneOutcome::Cancelled:
    return "cancelled";
  case LaneOutcome::CpuLimit:
    return "cpu-limit";
  case LaneOutcome::MemoryLimit:
    return "memory-limit";
  }
  return "unknown";
}

std::string ProcessResult::describe() const {
  char Buf[128];
  switch (Outcome) {
  case LaneOutcome::Completed:
    return "completed";
  case LaneOutcome::Failed:
    return Payload.empty() ? "engine failed" : Payload;
  case LaneOutcome::Crashed:
    if (Signal != 0) {
      const char *Name = strsignal(Signal);
      snprintf(Buf, sizeof(Buf), "killed by signal %d (%s)", Signal,
               Name != nullptr ? Name : "?");
      return Buf;
    }
    snprintf(Buf, sizeof(Buf), "crashed (exit code %d, truncated result)",
             ExitCode);
    return Buf;
  case LaneOutcome::TimedOut:
    snprintf(Buf, sizeof(Buf), "wall deadline exceeded after %.2fs (killed)",
             Seconds);
    return Buf;
  case LaneOutcome::Cancelled:
    return "cancelled (killed after another lane won)";
  case LaneOutcome::CpuLimit:
    return "CPU rlimit exceeded (killed by the kernel)";
  case LaneOutcome::MemoryLimit:
    return Payload.empty() ? "memory rlimit exceeded (std::bad_alloc)"
                           : "memory rlimit exceeded (" + Payload + ")";
  }
  return "unknown outcome";
}

ProcessResult
runInChildProcess(const std::function<std::string()> &Work,
                  const ProcessLimits &Limits,
                  const std::shared_ptr<const CancellationToken> &Cancel) {
  ProcessResult Out;
  Timer Clock;

  int Fds[2];
  if (::pipe(Fds) != 0) {
    Out.Outcome = LaneOutcome::Crashed;
    Out.Payload = "pipe() failed";
    return Out;
  }

  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Fds[0]);
    ::close(Fds[1]);
    Out.Outcome = LaneOutcome::Crashed;
    Out.Payload = "fork() failed";
    return Out;
  }
  if (Pid == 0) {
    ::close(Fds[0]);
    runChild(Fds[1], Work, Limits); // does not return
  }

  ::close(Fds[1]);
  int Rd = Fds[0];

  // Read the pipe to EOF while enforcing the wall deadline and the shared
  // cancellation token. SIGKILL is sent at most once; the loop keeps
  // draining afterwards so a payload already in flight is not lost.
  std::string Raw;
  KillReason Killed = KillReason::None;
  char Buf[4096];
  for (;;) {
    if (Killed == KillReason::None) {
      if (Limits.WallSeconds > 0 && Clock.elapsedSeconds() > Limits.WallSeconds) {
        Killed = KillReason::Deadline;
        ::kill(Pid, SIGKILL);
      } else if (isCancelled(Cancel)) {
        Killed = KillReason::Cancelled;
        ::kill(Pid, SIGKILL);
      }
    }
    struct pollfd PFd = {Rd, POLLIN, 0};
    int PR = ::poll(&PFd, 1, /*timeout_ms=*/20);
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (PR == 0)
      continue; // poll tick: re-check deadline/cancellation above
    ssize_t N = ::read(Rd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0)
      break; // EOF: child closed its end (exited or was killed)
    Raw.append(Buf, static_cast<size_t>(N));
  }
  ::close(Rd);

  int Status = 0;
  while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }
  Out.Seconds = Clock.elapsedSeconds();

  // Decode the payload if a complete frame arrived.
  bool FrameOk = false;
  if (Raw.size() >= sizeof(Magic) + sizeof(uint64_t) &&
      memcmp(Raw.data(), Magic, sizeof(Magic)) == 0) {
    uint64_t Len = 0;
    memcpy(&Len, Raw.data() + sizeof(Magic), sizeof(Len));
    if (Raw.size() == sizeof(Magic) + sizeof(uint64_t) + Len) {
      Out.Payload = Raw.substr(sizeof(Magic) + sizeof(uint64_t));
      FrameOk = true;
    }
  }

  // Classification order: a complete frame from a normally-exited child
  // wins (it finished before any kill landed), then a parent-initiated
  // kill, then the termination signal.
  if (WIFEXITED(Status) && FrameOk) {
    Out.ExitCode = WEXITSTATUS(Status);
    switch (Out.ExitCode) {
    case ExitOk:
      Out.Outcome = LaneOutcome::Completed;
      break;
    case ExitBadAlloc:
      Out.Outcome = Limits.MemoryBytes > 0 ? LaneOutcome::MemoryLimit
                                           : LaneOutcome::Failed;
      break;
    default:
      Out.Outcome = LaneOutcome::Failed;
      break;
    }
    return Out;
  }
  if (Killed == KillReason::Deadline) {
    Out.Outcome = LaneOutcome::TimedOut;
    Out.Payload.clear();
    return Out;
  }
  if (Killed == KillReason::Cancelled) {
    Out.Outcome = LaneOutcome::Cancelled;
    Out.Payload.clear();
    return Out;
  }
  if (WIFSIGNALED(Status)) {
    Out.Signal = WTERMSIG(Status);
    Out.Outcome = (Out.Signal == SIGXCPU || Out.Signal == SIGKILL)
                      ? LaneOutcome::CpuLimit
                      : LaneOutcome::Crashed;
    // SIGKILL we did not send means the kernel's RLIMIT_CPU hard limit (or
    // the OOM killer) fired; with no CPU limit configured, call it a crash.
    if (Out.Signal == SIGKILL && Limits.CpuSeconds <= 0)
      Out.Outcome = LaneOutcome::Crashed;
    return Out;
  }
  if (WIFEXITED(Status)) {
    // Exited "normally" without a complete frame: something inside the
    // child (a sanitizer runtime, an abort handler) exited underneath the
    // work closure. Treat it as a crash with the exit code preserved.
    Out.ExitCode = WEXITSTATUS(Status);
  }
  Out.Outcome = LaneOutcome::Crashed;
  Out.Payload.clear();
  return Out;
}

} // namespace la
