//===- support/Timer.h - Wall-clock timing and budgets ----------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock stopwatch and a deadline helper used to implement the
/// per-solver timeouts in the evaluation harness.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SUPPORT_TIMER_H
#define LA_SUPPORT_TIMER_H

#include <chrono>

namespace la {

/// Monotonic stopwatch started at construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double elapsedMillis() const { return elapsedSeconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A soft deadline; `expired()` is polled at loop heads of the solvers.
class Deadline {
public:
  /// A deadline `Seconds` from now; non-positive means "no deadline".
  explicit Deadline(double Seconds = 0) : Budget(Seconds) {}

  bool hasLimit() const { return Budget > 0; }
  bool expired() const { return hasLimit() && Watch.elapsedSeconds() >= Budget; }
  double remainingSeconds() const {
    return hasLimit() ? Budget - Watch.elapsedSeconds() : 1e18;
  }
  double elapsedSeconds() const { return Watch.elapsedSeconds(); }

private:
  Timer Watch;
  double Budget;
};

} // namespace la

#endif // LA_SUPPORT_TIMER_H
