//===- support/Cancellation.h - Budgets + cooperative cancellation -*- C++ -*-//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-limit vocabulary shared by every CHC engine:
///
///   * `Budget` is the single pair of knobs (wall-clock seconds, iteration
///     cap) that used to be duplicated as per-engine `TimeoutSeconds` /
///     `MaxIterations` / `MaxObligations` fields;
///   * `CancellationToken` is a shared atomic flag for cooperative
///     cancellation. The portfolio engine hands one token to every lane and
///     trips it when a lane produces a definitive answer; engines poll it at
///     their loop heads (CEGAR iterations, PDR obligations, unwinding steps)
///     and the SMT solver polls it at every theory check, so cancellation
///     latency is bounded by one propagation round, not by a wall-clock
///     poll interval.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SUPPORT_CANCELLATION_H
#define LA_SUPPORT_CANCELLATION_H

#include <atomic>
#include <cstddef>
#include <memory>

namespace la {

/// Resource budget understood by every engine. Zero means "unlimited" for
/// both fields; each engine substitutes its own default iteration cap when
/// `MaxIterations` is 0 and the engine needs one for termination.
struct Budget {
  /// Wall-clock budget in seconds (0 = unlimited).
  double WallSeconds = 0;
  /// Cap on the engine's main-loop steps: CEGAR iterations for the
  /// data-driven solver, proof obligations for PDR, refinement steps for
  /// the unwinding solver (0 = engine default / unlimited).
  size_t MaxIterations = 0;

  /// Overlay semantics used when a caller-level budget (façade, portfolio
  /// lane) meets an engine-level default: nonzero caller fields win.
  Budget resolvedOver(const Budget &Defaults) const {
    Budget Out = *this;
    if (Out.WallSeconds <= 0)
      Out.WallSeconds = Defaults.WallSeconds;
    if (Out.MaxIterations == 0)
      Out.MaxIterations = Defaults.MaxIterations;
    return Out;
  }
};

/// A shared cooperative-cancellation flag. `cancel()` is sticky: once set
/// the token never resets, so late pollers always observe it.
class CancellationToken {
public:
  void cancel() noexcept { Flag.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return Flag.load(std::memory_order_acquire);
  }

private:
  std::atomic<bool> Flag{false};
};

/// Null-tolerant poll helper: engine option structs carry the token as a
/// possibly-empty shared_ptr.
inline bool isCancelled(const std::shared_ptr<const CancellationToken> &T) {
  return T && T->cancelled();
}

} // namespace la

#endif // LA_SUPPORT_CANCELLATION_H
