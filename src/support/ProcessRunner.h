//===- support/ProcessRunner.h - Forked worker with hard limits -*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a unit of work in a forked child process with hard resource limits.
/// This is the isolation primitive behind the portfolio's `Process` lane
/// mode: a lane that segfaults, aborts, exhausts memory, or spins forever
/// kills (or is killed in) its own address space instead of taking down the
/// serving process.
///
/// Protocol: the child runs the work closure and writes its string result to
/// a pipe as `"LAPR" + u64 little-endian length + bytes`, then `_exit(0)`.
/// A thrown exception is reported the same way (the payload is `what()`)
/// with exit code 3 (4 for `std::bad_alloc`, which is what `RLIMIT_AS`
/// usually turns into). The parent polls the pipe, enforces the wall
/// deadline and cooperative cancellation by `SIGKILL`, reaps the child with
/// `waitpid`, and classifies the exit status into a `LaneOutcome`.
///
/// The closure runs after `fork()` in a child of a (typically)
/// multithreaded parent, so it must not depend on locks another thread may
/// hold at fork time. Callers prepare everything that takes locks (engine
/// construction, registry lookups) *before* calling `runInChildProcess` and
/// keep the closure to pure computation over already-owned data.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SUPPORT_PROCESSRUNNER_H
#define LA_SUPPORT_PROCESSRUNNER_H

#include "support/Cancellation.h"

#include <functional>
#include <memory>
#include <string>

namespace la {

/// How a forked lane's execution ended. In-thread lanes only ever see
/// `Completed` (normal return) or `Failed` (contained C++ exception); the
/// remaining states require a process boundary to observe.
enum class LaneOutcome {
  /// Child exited 0 with a complete payload.
  Completed,
  /// Child reported a contained C++ exception (exit code 3).
  Failed,
  /// Child died on a signal (SIGSEGV, SIGABRT, ...) or produced a
  /// truncated/garbled payload.
  Crashed,
  /// Parent killed the child at the wall deadline.
  TimedOut,
  /// Parent killed the child because the shared cancellation token
  /// tripped (another lane won).
  Cancelled,
  /// Child exceeded `RLIMIT_CPU` (died on SIGXCPU/SIGKILL from the
  /// kernel's hard CPU limit).
  CpuLimit,
  /// Child exceeded `RLIMIT_AS` and reported `std::bad_alloc` (exit
  /// code 4).
  MemoryLimit,
};

const char *toString(LaneOutcome O);

/// Hard limits applied to the forked child. Zero means "no limit" for every
/// field.
struct ProcessLimits {
  /// Wall-clock deadline enforced by the parent with SIGKILL.
  double WallSeconds = 0;
  /// `RLIMIT_CPU` for the child, in seconds (soft limit delivers SIGXCPU,
  /// hard limit soft+2 delivers SIGKILL).
  double CpuSeconds = 0;
  /// `RLIMIT_AS` for the child, in bytes.
  size_t MemoryBytes = 0;
};

/// What happened to the child, plus whatever it managed to say.
struct ProcessResult {
  LaneOutcome Outcome = LaneOutcome::Crashed;
  /// Work result for `Completed`; exception text for `Failed` /
  /// `MemoryLimit`; empty or partial otherwise.
  std::string Payload;
  /// Child exit code when it exited normally, -1 otherwise.
  int ExitCode = -1;
  /// Terminating signal when the child was signalled, 0 otherwise.
  int Signal = 0;
  /// Wall-clock seconds from fork to reap.
  double Seconds = 0;

  /// One-line human-readable classification ("killed by signal 11
  /// (SIGSEGV)", "wall deadline exceeded (killed)", ...).
  std::string describe() const;
};

/// Forks, runs \p Work in the child under \p Limits, and returns the
/// classified result. \p Cancel, when non-null, is polled by the parent;
/// tripping it kills the child and yields `LaneOutcome::Cancelled`. Blocks
/// until the child is reaped (the child is always reaped — no zombies).
ProcessResult
runInChildProcess(const std::function<std::string()> &Work,
                  const ProcessLimits &Limits,
                  const std::shared_ptr<const CancellationToken> &Cancel = {});

} // namespace la

#endif // LA_SUPPORT_PROCESSRUNNER_H
