//===- support/FileCache.h - Disk-backed key/value verdict cache -*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent string → string cache on local disk, used as the second tier
/// under the in-memory result caches: whole-request verdicts (keyed by a
/// canonical hash of the printed SMT-LIB2 system + engine id + budget
/// bucket) and clause-check verdicts (keyed by a canonical system hash +
/// clause index + interpretation hash) survive daemon crashes and restarts.
///
/// Durability model:
///   * one record per entry, filename derived from a 128-bit FNV-1a hash of
///     the key; the full key is stored inside the record and verified on
///     read, so hash collisions degrade to misses, never to wrong answers;
///   * writes go to a temp file in the same directory and are published
///     with `rename()`, so readers never observe a half-written record and
///     a crash mid-store leaves at most a stray temp file;
///   * reads are corruption-tolerant: any record that fails the magic, the
///     length framing, or the key check is dropped (unlinked) and counted,
///     and the lookup reports a miss;
///   * the store is size-capped: when either the byte or the entry cap is
///     exceeded after a store, the oldest records (by mtime) are evicted
///     down to 90% of the cap.
///
/// Thread safety: all operations lock an in-process mutex. Cross-process
/// safety comes from the atomic-rename publish; two daemons sharing a cache
/// directory may both store the same key and one rename wins — either
/// record is a valid answer for that key.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SUPPORT_FILECACHE_H
#define LA_SUPPORT_FILECACHE_H

#include <cstdint>
#include <mutex>
#include <string>

namespace la {

class FileCache {
public:
  struct Options {
    /// Cache directory; created (with parents) on construction.
    std::string Dir;
    /// Byte cap over all records (0 = unlimited).
    size_t MaxBytes = size_t(256) << 20;
    /// Entry-count cap (0 = unlimited).
    size_t MaxEntries = size_t(1) << 16;
  };

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Stores = 0;
    uint64_t Evictions = 0;
    /// Records dropped because they failed the magic / framing / key check.
    uint64_t CorruptDropped = 0;
  };

  explicit FileCache(Options O);

  /// 32-hex-digit stable content hash (two independent 64-bit FNV-1a
  /// passes). Callers use this to canonicalise large key components (the
  /// printed system, the printed interpretation) before composing keys.
  static std::string hashKey(const std::string &Text);

  /// Looks \p Key up; on hit fills \p Value and returns true. Any
  /// unreadable or mismatching record is treated as a miss.
  bool lookup(const std::string &Key, std::string &Value);

  /// Stores \p Value under \p Key (overwriting any previous record) and
  /// evicts oldest records if the store pushed the cache over its caps.
  void store(const std::string &Key, const std::string &Value);

  Stats stats() const;
  const std::string &dir() const { return Opts.Dir; }

private:
  std::string pathFor(const std::string &Key) const;
  void evictIfNeeded();

  Options Opts;
  mutable std::mutex Mutex;
  Stats Counters;
  size_t ApproxBytes = 0;
  size_t ApproxEntries = 0;
  uint64_t TmpSeq = 0;
};

} // namespace la

#endif // LA_SUPPORT_FILECACHE_H
