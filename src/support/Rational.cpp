//===- support/Rational.cpp - Exact rational arithmetic -------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

using namespace la;

Rational::Rational(BigInt Numerator, BigInt Denominator)
    : Num(std::move(Numerator)), Den(std::move(Denominator)) {
  assert(!Den.isZero() && "rational with zero denominator");
  if (Den.isNegative()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num = Num / G;
    Den = Den / G;
  }
}

std::optional<Rational> Rational::fromString(const std::string &Text) {
  size_t Slash = Text.find('/');
  if (Slash == std::string::npos) {
    std::optional<BigInt> N = BigInt::fromString(Text);
    if (!N)
      return std::nullopt;
    return Rational(*N);
  }
  std::optional<BigInt> N = BigInt::fromString(Text.substr(0, Slash));
  std::optional<BigInt> D = BigInt::fromString(Text.substr(Slash + 1));
  if (!N || !D || D->isZero())
    return std::nullopt;
  return Rational(*N, *D);
}

Rational Rational::operator-() const {
  Rational Result = *this;
  Result.Num = -Result.Num;
  return Result;
}

Rational Rational::abs() const {
  Rational Result = *this;
  Result.Num = Result.Num.abs();
  return Result;
}

Rational Rational::inverse() const {
  assert(!isZero() && "inverse of zero");
  return Rational(Den, Num);
}

Rational Rational::operator+(const Rational &RHS) const {
  return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  return Rational(Num * RHS.Num, Den * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  return Rational(Num * RHS.Den, Den * RHS.Num);
}

int Rational::compare(const Rational &RHS) const {
  return (Num * RHS.Den).compare(RHS.Num * Den);
}

BigInt Rational::floor() const {
  BigInt::DivModResult QR = Num.divMod(Den);
  // Truncation rounds toward zero; fix up for negative non-integers.
  if (Num.isNegative() && !QR.Remainder.isZero())
    return QR.Quotient - BigInt(1);
  return QR.Quotient;
}

BigInt Rational::ceil() const {
  BigInt::DivModResult QR = Num.divMod(Den);
  if (!Num.isNegative() && !QR.Remainder.isZero())
    return QR.Quotient + BigInt(1);
  return QR.Quotient;
}

double Rational::toDouble() const { return Num.toDouble() / Den.toDouble(); }

std::string Rational::toString() const {
  if (Den.isOne())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}

size_t Rational::hash() const {
  return Num.hash() * 31 + Den.hash();
}
