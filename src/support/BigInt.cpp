//===- support/BigInt.cpp - Arbitrary-precision integers ------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace la;

BigInt::BigInt(int64_t Value) {
  if (Value == 0)
    return;
  Negative = Value < 0;
  // Avoid UB on INT64_MIN by negating in the unsigned domain.
  uint64_t Magnitude =
      Negative ? ~static_cast<uint64_t>(Value) + 1 : static_cast<uint64_t>(Value);
  Limbs.push_back(Magnitude);
}

std::optional<BigInt> BigInt::fromString(const std::string &Text) {
  size_t Start = 0;
  bool Neg = false;
  if (Start < Text.size() && (Text[Start] == '-' || Text[Start] == '+')) {
    Neg = Text[Start] == '-';
    ++Start;
  }
  if (Start >= Text.size())
    return std::nullopt;
  BigInt Result;
  BigInt Ten(10);
  for (size_t I = Start; I < Text.size(); ++I) {
    if (Text[I] < '0' || Text[I] > '9')
      return std::nullopt;
    Result = Result * Ten + BigInt(Text[I] - '0');
  }
  if (Neg && !Result.isZero())
    Result.Negative = true;
  return Result;
}

void BigInt::normalize() {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
  if (Limbs.empty())
    Negative = false;
}

int BigInt::compareMagnitude(const std::vector<uint64_t> &A,
                             const std::vector<uint64_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;) {
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  }
  return 0;
}

std::vector<uint64_t> BigInt::addMagnitude(const std::vector<uint64_t> &A,
                                           const std::vector<uint64_t> &B) {
  const std::vector<uint64_t> &Long = A.size() >= B.size() ? A : B;
  const std::vector<uint64_t> &Short = A.size() >= B.size() ? B : A;
  std::vector<uint64_t> Result;
  Result.reserve(Long.size() + 1);
  unsigned __int128 Carry = 0;
  for (size_t I = 0; I < Long.size(); ++I) {
    unsigned __int128 Sum = Carry + Long[I];
    if (I < Short.size())
      Sum += Short[I];
    Result.push_back(static_cast<uint64_t>(Sum));
    Carry = Sum >> 64;
  }
  if (Carry != 0)
    Result.push_back(static_cast<uint64_t>(Carry));
  return Result;
}

std::vector<uint64_t> BigInt::subMagnitude(const std::vector<uint64_t> &A,
                                           const std::vector<uint64_t> &B) {
  assert(compareMagnitude(A, B) >= 0 && "subtraction would underflow");
  std::vector<uint64_t> Result;
  Result.reserve(A.size());
  uint64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    uint64_t Sub = I < B.size() ? B[I] : 0;
    uint64_t Value = A[I] - Sub - Borrow;
    // Borrow occurred iff A[I] < Sub + Borrow in the unsigned domain.
    Borrow = (A[I] < Sub || (A[I] == Sub && Borrow)) ? 1 : 0;
    Result.push_back(Value);
  }
  return Result;
}

BigInt BigInt::operator-() const {
  BigInt Result = *this;
  if (!Result.isZero())
    Result.Negative = !Result.Negative;
  return Result;
}

BigInt BigInt::abs() const {
  BigInt Result = *this;
  Result.Negative = false;
  return Result;
}

BigInt BigInt::operator+(const BigInt &RHS) const {
  BigInt Result;
  if (Negative == RHS.Negative) {
    Result.Limbs = addMagnitude(Limbs, RHS.Limbs);
    Result.Negative = Negative;
  } else if (compareMagnitude(Limbs, RHS.Limbs) >= 0) {
    Result.Limbs = subMagnitude(Limbs, RHS.Limbs);
    Result.Negative = Negative;
  } else {
    Result.Limbs = subMagnitude(RHS.Limbs, Limbs);
    Result.Negative = RHS.Negative;
  }
  Result.normalize();
  return Result;
}

BigInt BigInt::operator-(const BigInt &RHS) const { return *this + (-RHS); }

BigInt BigInt::operator*(const BigInt &RHS) const {
  if (isZero() || RHS.isZero())
    return BigInt();
  BigInt Result;
  Result.Limbs.assign(Limbs.size() + RHS.Limbs.size(), 0);
  for (size_t I = 0; I < Limbs.size(); ++I) {
    unsigned __int128 Carry = 0;
    for (size_t J = 0; J < RHS.Limbs.size(); ++J) {
      unsigned __int128 Cur = Result.Limbs[I + J];
      Cur += static_cast<unsigned __int128>(Limbs[I]) * RHS.Limbs[J] + Carry;
      Result.Limbs[I + J] = static_cast<uint64_t>(Cur);
      Carry = Cur >> 64;
    }
    size_t K = I + RHS.Limbs.size();
    while (Carry != 0) {
      unsigned __int128 Cur = Result.Limbs[K];
      Cur += Carry;
      Result.Limbs[K] = static_cast<uint64_t>(Cur);
      Carry = Cur >> 64;
      ++K;
    }
  }
  Result.Negative = Negative != RHS.Negative;
  Result.normalize();
  return Result;
}

bool BigInt::magnitudeBit(size_t Index) const {
  size_t Limb = Index / 64;
  if (Limb >= Limbs.size())
    return false;
  return (Limbs[Limb] >> (Index % 64)) & 1;
}

size_t BigInt::bitLength() const {
  if (Limbs.empty())
    return 0;
  uint64_t Top = Limbs.back();
  size_t Bits = 0;
  while (Top != 0) {
    ++Bits;
    Top >>= 1;
  }
  return (Limbs.size() - 1) * 64 + Bits;
}

BigInt::DivModResult BigInt::divMod(const BigInt &Divisor) const {
  assert(!Divisor.isZero() && "division by zero");
  DivModResult Result;
  // Fast path: both values fit in a machine word.
  if (Limbs.size() <= 1 && Divisor.Limbs.size() <= 1) {
    uint64_t A = Limbs.empty() ? 0 : Limbs[0];
    uint64_t B = Divisor.Limbs[0];
    uint64_t Q = A / B, R = A % B;
    if (Q != 0) {
      Result.Quotient.Limbs.push_back(Q);
      Result.Quotient.Negative = Negative != Divisor.Negative;
    }
    if (R != 0) {
      Result.Remainder.Limbs.push_back(R);
      Result.Remainder.Negative = Negative;
    }
    return Result;
  }

  // Shift-subtract long division over magnitudes.
  const size_t Bits = bitLength();
  BigInt Remainder;
  BigInt Quotient;
  Quotient.Limbs.assign(Limbs.size(), 0);
  BigInt DivisorAbs = Divisor.abs();
  for (size_t I = Bits; I-- > 0;) {
    // Remainder = Remainder * 2 + bit(I); shift in place.
    uint64_t Carry = magnitudeBit(I) ? 1 : 0;
    for (size_t J = 0; J < Remainder.Limbs.size(); ++J) {
      uint64_t Next = Remainder.Limbs[J] >> 63;
      Remainder.Limbs[J] = (Remainder.Limbs[J] << 1) | Carry;
      Carry = Next;
    }
    if (Carry != 0)
      Remainder.Limbs.push_back(Carry);
    if (compareMagnitude(Remainder.Limbs, DivisorAbs.Limbs) >= 0) {
      Remainder.Limbs = subMagnitude(Remainder.Limbs, DivisorAbs.Limbs);
      Remainder.normalize();
      Quotient.Limbs[I / 64] |= uint64_t(1) << (I % 64);
    }
  }
  Quotient.Negative = Negative != Divisor.Negative;
  Quotient.normalize();
  Remainder.Negative = Negative;
  Remainder.normalize();
  Result.Quotient = std::move(Quotient);
  Result.Remainder = std::move(Remainder);
  return Result;
}

BigInt BigInt::operator/(const BigInt &RHS) const { return divMod(RHS).Quotient; }

BigInt BigInt::operator%(const BigInt &RHS) const {
  return divMod(RHS).Remainder;
}

BigInt BigInt::euclideanMod(const BigInt &Divisor) const {
  BigInt R = *this % Divisor;
  if (R.isNegative())
    R += Divisor.abs();
  return R;
}

BigInt BigInt::gcd(const BigInt &A, const BigInt &B) {
  BigInt X = A.abs(), Y = B.abs();
  while (!Y.isZero()) {
    BigInt R = X % Y;
    X = std::move(Y);
    Y = std::move(R);
  }
  return X;
}

int BigInt::compare(const BigInt &RHS) const {
  if (Negative != RHS.Negative)
    return Negative ? -1 : 1;
  int Mag = compareMagnitude(Limbs, RHS.Limbs);
  return Negative ? -Mag : Mag;
}

std::optional<int64_t> BigInt::toInt64() const {
  if (Limbs.empty())
    return 0;
  if (Limbs.size() > 1)
    return std::nullopt;
  uint64_t Magnitude = Limbs[0];
  if (Negative) {
    if (Magnitude > static_cast<uint64_t>(INT64_MAX) + 1)
      return std::nullopt;
    return static_cast<int64_t>(~Magnitude + 1);
  }
  if (Magnitude > static_cast<uint64_t>(INT64_MAX))
    return std::nullopt;
  return static_cast<int64_t>(Magnitude);
}

double BigInt::toDouble() const {
  double Result = 0;
  for (size_t I = Limbs.size(); I-- > 0;)
    Result = Result * 18446744073709551616.0 + static_cast<double>(Limbs[I]);
  return Negative ? -Result : Result;
}

std::string BigInt::toString() const {
  if (isZero())
    return "0";
  std::string Digits;
  BigInt Value = abs();
  BigInt Ten(10);
  while (!Value.isZero()) {
    DivModResult QR = Value.divMod(Ten);
    int64_t Digit = *QR.Remainder.toInt64();
    Digits.push_back(static_cast<char>('0' + Digit));
    Value = std::move(QR.Quotient);
  }
  if (Negative)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

size_t BigInt::hash() const {
  size_t Seed = Negative ? 0x9e3779b97f4a7c15ULL : 0;
  for (uint64_t Limb : Limbs)
    Seed ^= static_cast<size_t>(Limb) + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
            (Seed >> 2);
  return Seed;
}
