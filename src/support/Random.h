//===- support/Random.h - Deterministic pseudo-random numbers ---*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny deterministic xorshift generator. Every stochastic component in the
/// toolchain (SVM shuffling, dummy-classifier fallback, workload generation)
/// takes an explicit generator so runs are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SUPPORT_RANDOM_H
#define LA_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace la {

/// xorshift128+ pseudo-random generator with deterministic seeding.
class Random {
public:
  explicit Random(uint64_t Seed = 0x853c49e6748fea9bULL) {
    State0 = Seed ^ 0x9e3779b97f4a7c15ULL;
    State1 = splitMix(State0);
    if (State0 == 0 && State1 == 0)
      State1 = 1;
  }

  uint64_t next() {
    uint64_t X = State0;
    uint64_t Y = State1;
    State0 = Y;
    X ^= X << 23;
    State1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return State1 + Y;
  }

  /// Uniform value in [0, Bound); Bound must be positive.
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBounded(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  static uint64_t splitMix(uint64_t X) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  }

  uint64_t State0;
  uint64_t State1;
};

} // namespace la

#endif // LA_SUPPORT_RANDOM_H
