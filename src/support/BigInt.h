//===- support/BigInt.h - Arbitrary-precision integers ----------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sign-magnitude arbitrary-precision integer used by the exact arithmetic
/// layer (rationals, simplex pivots, Farkas certificates). The magnitudes
/// that occur in CHC solving are small (a handful of 64-bit limbs), so the
/// implementation favours simplicity and obvious correctness: schoolbook
/// multiplication and shift-subtract division.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SUPPORT_BIGINT_H
#define LA_SUPPORT_BIGINT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace la {

/// Arbitrary-precision signed integer.
///
/// Representation invariant: \c Limbs is little-endian with no leading zero
/// limb, and \c Negative is false when the value is zero.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a machine integer.
  BigInt(int64_t Value);

  /// Parses a decimal string with optional leading '-'.
  ///
  /// \returns std::nullopt if \p Text is empty or contains a non-digit.
  static std::optional<BigInt> fromString(const std::string &Text);

  /// \returns -1, 0 or +1.
  int signum() const {
    if (Limbs.empty())
      return 0;
    return Negative ? -1 : 1;
  }

  bool isZero() const { return Limbs.empty(); }
  bool isOne() const { return !Negative && Limbs.size() == 1 && Limbs[0] == 1; }
  bool isNegative() const { return Negative; }

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }

  /// Truncating division (C semantics): the quotient rounds toward zero and
  /// the remainder has the sign of the dividend. Asserts on division by zero.
  struct DivModResult;
  DivModResult divMod(const BigInt &Divisor) const;

  /// Quotient of truncating division.
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder of truncating division.
  BigInt operator%(const BigInt &RHS) const;

  /// Euclidean (non-negative) remainder, used for `mod` feature semantics.
  BigInt euclideanMod(const BigInt &Divisor) const;

  /// Greatest common divisor of the absolute values; gcd(0, 0) == 0.
  static BigInt gcd(const BigInt &A, const BigInt &B);

  bool operator==(const BigInt &RHS) const {
    return Negative == RHS.Negative && Limbs == RHS.Limbs;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  /// Three-way comparison: negative, zero or positive.
  int compare(const BigInt &RHS) const;

  /// \returns the value as int64_t, or std::nullopt when out of range.
  std::optional<int64_t> toInt64() const;

  /// \returns a double approximation (may overflow to +/-inf).
  double toDouble() const;

  std::string toString() const;

  /// Number of significant bits of the magnitude (0 for zero).
  size_t bitLength() const;

  /// Hash suitable for unordered containers.
  size_t hash() const;

private:
  /// Magnitude comparison helper: -1, 0, +1 over |this| vs |RHS|.
  static int compareMagnitude(const std::vector<uint64_t> &A,
                              const std::vector<uint64_t> &B);
  static std::vector<uint64_t> addMagnitude(const std::vector<uint64_t> &A,
                                            const std::vector<uint64_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint64_t> subMagnitude(const std::vector<uint64_t> &A,
                                            const std::vector<uint64_t> &B);
  void normalize();
  bool magnitudeBit(size_t Index) const;

  bool Negative = false;
  std::vector<uint64_t> Limbs;
};

struct BigInt::DivModResult {
  BigInt Quotient;
  BigInt Remainder;
};

} // namespace la

#endif // LA_SUPPORT_BIGINT_H
