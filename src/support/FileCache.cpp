//===- support/FileCache.cpp - Disk-backed key/value verdict cache --------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FileCache.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace la {

namespace {

constexpr const char *RecordMagic = "la-file-cache 1";
constexpr const char *RecordSuffix = ".rec";

uint64_t fnv1a64(const std::string &Text, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

void appendHex64(std::string &Out, uint64_t V) {
  static const char *Digits = "0123456789abcdef";
  for (int Shift = 60; Shift >= 0; Shift -= 4)
    Out.push_back(Digits[(V >> Shift) & 0xF]);
}

/// mkdir -p for an absolute or relative path.
void makeDirs(const std::string &Path) {
  std::string Partial;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I == Path.size() || Path[I] == '/') {
      if (!Partial.empty() && Partial != "/")
        ::mkdir(Partial.c_str(), 0755);
      if (I < Path.size())
        Partial.push_back('/');
      continue;
    }
    Partial.push_back(Path[I]);
  }
}

bool hasSuffix(const std::string &Name, const std::string &Suffix) {
  return Name.size() >= Suffix.size() &&
         Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

/// Reads `tag <len>\n<bytes>\n` from \p In into \p Out; false on framing
/// mismatch.
bool readBlock(std::istream &In, const std::string &Tag, std::string &Out) {
  std::string Word;
  size_t Len = 0;
  if (!(In >> Word) || Word != Tag || !(In >> Len))
    return false;
  if (In.get() != '\n')
    return false;
  if (Len > (size_t(1) << 30)) // sanity cap: no 1 GiB records
    return false;
  Out.resize(Len);
  if (Len > 0 && !In.read(Out.data(), static_cast<std::streamsize>(Len)))
    return false;
  return In.get() == '\n';
}

void writeBlock(std::ostream &Out, const char *Tag, const std::string &Text) {
  Out << Tag << ' ' << Text.size() << '\n' << Text << '\n';
}

} // namespace

FileCache::FileCache(Options O) : Opts(std::move(O)) {
  makeDirs(Opts.Dir);
  // Prime the approximate size counters from whatever a previous run (or a
  // previous daemon crash) left behind.
  DIR *D = ::opendir(Opts.Dir.c_str());
  if (D == nullptr)
    return;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (!hasSuffix(Name, RecordSuffix))
      continue;
    struct stat St = {};
    if (::stat((Opts.Dir + "/" + Name).c_str(), &St) == 0) {
      ApproxBytes += static_cast<size_t>(St.st_size);
      ++ApproxEntries;
    }
  }
  ::closedir(D);
}

std::string FileCache::hashKey(const std::string &Text) {
  // Two independent FNV-1a passes (different offset bases) give a 128-bit
  // identifier without pulling in a crypto dependency; the full key is
  // still verified on read, so a collision costs a miss, not a wrong hit.
  uint64_t H1 = fnv1a64(Text, 1469598103934665603ull);
  uint64_t H2 = fnv1a64(Text, 0x9e3779b97f4a7c15ull ^ H1);
  std::string Out;
  Out.reserve(32);
  appendHex64(Out, H1);
  appendHex64(Out, H2);
  return Out;
}

std::string FileCache::pathFor(const std::string &Key) const {
  return Opts.Dir + "/" + hashKey(Key) + RecordSuffix;
}

bool FileCache::lookup(const std::string &Key, std::string &Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Path = pathFor(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open()) {
    ++Counters.Misses;
    return false;
  }
  std::string Line;
  std::string StoredKey;
  std::string StoredValue;
  bool Ok = std::getline(In, Line) && Line == RecordMagic &&
            readBlock(In, "key", StoredKey) &&
            readBlock(In, "val", StoredValue);
  if (!Ok) {
    // Corrupt record (partial write from a crashed process, disk damage):
    // drop it so it cannot fail again, and report a miss.
    In.close();
    struct stat St = {};
    if (::stat(Path.c_str(), &St) == 0) {
      if (::unlink(Path.c_str()) == 0) {
        ApproxBytes -= std::min(ApproxBytes, size_t(St.st_size));
        ApproxEntries -= std::min<size_t>(ApproxEntries, 1);
      }
    }
    ++Counters.CorruptDropped;
    ++Counters.Misses;
    return false;
  }
  if (StoredKey != Key) {
    // 128-bit hash collision: keep the resident record, report a miss.
    ++Counters.Misses;
    return false;
  }
  Value = std::move(StoredValue);
  ++Counters.Hits;
  return true;
}

void FileCache::store(const std::string &Key, const std::string &Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Path = pathFor(Key);
  std::string Tmp =
      Path + ".tmp." + std::to_string(::getpid()) + "." + std::to_string(TmpSeq++);
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out.is_open())
      return;
    Out << RecordMagic << '\n';
    writeBlock(Out, "key", Key);
    writeBlock(Out, "val", Value);
    if (!Out.good()) {
      Out.close();
      ::unlink(Tmp.c_str());
      return;
    }
  }
  struct stat Old = {};
  bool Existed = ::stat(Path.c_str(), &Old) == 0;
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return;
  }
  struct stat New = {};
  if (::stat(Path.c_str(), &New) == 0)
    ApproxBytes += static_cast<size_t>(New.st_size);
  if (Existed)
    ApproxBytes -= std::min(ApproxBytes, size_t(Old.st_size));
  else
    ++ApproxEntries;
  ++Counters.Stores;
  evictIfNeeded();
}

void FileCache::evictIfNeeded() {
  bool OverBytes = Opts.MaxBytes > 0 && ApproxBytes > Opts.MaxBytes;
  bool OverEntries = Opts.MaxEntries > 0 && ApproxEntries > Opts.MaxEntries;
  if (!OverBytes && !OverEntries)
    return;

  struct Entry {
    std::string Path;
    time_t Mtime;
    size_t Size;
  };
  std::vector<Entry> Entries;
  DIR *D = ::opendir(Opts.Dir.c_str());
  if (D == nullptr)
    return;
  size_t TotalBytes = 0;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (!hasSuffix(Name, RecordSuffix))
      continue;
    std::string Path = Opts.Dir + "/" + Name;
    struct stat St = {};
    if (::stat(Path.c_str(), &St) != 0)
      continue;
    Entries.push_back({Path, St.st_mtime, static_cast<size_t>(St.st_size)});
    TotalBytes += static_cast<size_t>(St.st_size);
  }
  ::closedir(D);

  // Rebuild the approximate counters from the real directory listing while
  // we have it — they drift when other processes share the directory.
  ApproxBytes = TotalBytes;
  ApproxEntries = Entries.size();

  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.Mtime < B.Mtime; });

  size_t ByteGoal =
      Opts.MaxBytes > 0 ? Opts.MaxBytes - Opts.MaxBytes / 10 : size_t(-1);
  size_t EntryGoal =
      Opts.MaxEntries > 0 ? Opts.MaxEntries - Opts.MaxEntries / 10 : size_t(-1);
  for (const Entry &E : Entries) {
    if (ApproxBytes <= ByteGoal && ApproxEntries <= EntryGoal)
      break;
    if (::unlink(E.Path.c_str()) != 0)
      continue;
    ApproxBytes -= std::min(ApproxBytes, E.Size);
    ApproxEntries -= std::min<size_t>(ApproxEntries, 1);
    ++Counters.Evictions;
  }
}

FileCache::Stats FileCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

} // namespace la
