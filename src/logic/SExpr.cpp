//===- logic/SExpr.cpp - S-expression reader ------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/SExpr.h"

using namespace la;

std::string SExpr::toString() const {
  if (IsAtom)
    return Atom;
  std::string Out = "(";
  for (size_t I = 0; I < Items.size(); ++I) {
    if (I != 0)
      Out += " ";
    Out += Items[I].toString();
  }
  return Out + ")";
}

namespace {

class Reader {
public:
  explicit Reader(const std::string &Text) : Text(Text) {}

  SExprParseResult run() {
    SExprParseResult Result;
    skipTrivia();
    while (Pos < Text.size()) {
      SExpr Node;
      if (!parseNode(Node, Result)) {
        Result.Ok = false;
        return Result;
      }
      Result.TopLevel.push_back(std::move(Node));
      skipTrivia();
    }
    return Result;
  }

private:
  /// 1-based column of the current position.
  size_t col() const { return Pos - LineStart + 1; }

  void advanceLine() {
    ++Line;
    LineStart = Pos + 1;
  }

  void skipTrivia() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        advanceLine();
        ++Pos;
      } else if (C == ' ' || C == '\t' || C == '\r') {
        ++Pos;
      } else if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  bool fail(SExprParseResult &Result, const std::string &Message) {
    Result.ErrLine = Line;
    Result.ErrCol = col();
    Result.Error = "line " + std::to_string(Line) + ": " + Message;
    return false;
  }

  bool parseNode(SExpr &Out, SExprParseResult &Result) {
    skipTrivia();
    Out.Line = Line;
    Out.Col = col();
    if (Pos >= Text.size())
      return fail(Result, "unexpected end of input");
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      Out.IsAtom = false;
      for (;;) {
        skipTrivia();
        if (Pos >= Text.size())
          return fail(Result, "unterminated list");
        if (Text[Pos] == ')') {
          ++Pos;
          return true;
        }
        SExpr Child;
        if (!parseNode(Child, Result))
          return false;
        Out.Items.push_back(std::move(Child));
      }
    }
    if (C == ')')
      return fail(Result, "unexpected ')'");
    if (C == '|') {
      // Quoted symbol; may span lines, so keep the line counter honest.
      size_t End = Pos + 1;
      size_t QuoteLine = Line, QuoteLineStart = LineStart;
      while (End < Text.size() && Text[End] != '|') {
        if (Text[End] == '\n') {
          ++QuoteLine;
          QuoteLineStart = End + 1;
        }
        ++End;
      }
      if (End >= Text.size())
        return fail(Result, "unterminated |symbol|");
      Out.IsAtom = true;
      Out.Atom = Text.substr(Pos + 1, End - Pos - 1);
      Pos = End + 1;
      Line = QuoteLine;
      LineStart = QuoteLineStart;
      return true;
    }
    // Plain atom.
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char D = Text[Pos];
      if (D == '(' || D == ')' || D == ' ' || D == '\t' || D == '\n' ||
          D == '\r' || D == ';')
        break;
      ++Pos;
    }
    Out.IsAtom = true;
    Out.Atom = Text.substr(Start, Pos - Start);
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
  size_t Line = 1;
  size_t LineStart = 0;
};

} // namespace

SExprParseResult la::parseSExprs(const std::string &Text) {
  return Reader(Text).run();
}
