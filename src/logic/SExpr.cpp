//===- logic/SExpr.cpp - S-expression reader ------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/SExpr.h"

using namespace la;

std::string SExpr::toString() const {
  if (IsAtom)
    return Atom;
  std::string Out = "(";
  for (size_t I = 0; I < Items.size(); ++I) {
    if (I != 0)
      Out += " ";
    Out += Items[I].toString();
  }
  return Out + ")";
}

namespace {

class Reader {
public:
  explicit Reader(const std::string &Text) : Text(Text) {}

  SExprParseResult run() {
    SExprParseResult Result;
    skipTrivia();
    while (Pos < Text.size()) {
      SExpr Node;
      if (!parseNode(Node, Result.Error)) {
        Result.Ok = false;
        return Result;
      }
      Result.TopLevel.push_back(std::move(Node));
      skipTrivia();
    }
    return Result;
  }

private:
  void skipTrivia() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (C == ' ' || C == '\t' || C == '\r') {
        ++Pos;
      } else if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  bool parseNode(SExpr &Out, std::string &Error) {
    skipTrivia();
    Out.Line = Line;
    if (Pos >= Text.size()) {
      Error = "line " + std::to_string(Line) + ": unexpected end of input";
      return false;
    }
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      Out.IsAtom = false;
      for (;;) {
        skipTrivia();
        if (Pos >= Text.size()) {
          Error = "line " + std::to_string(Line) + ": unterminated list";
          return false;
        }
        if (Text[Pos] == ')') {
          ++Pos;
          return true;
        }
        SExpr Child;
        if (!parseNode(Child, Error))
          return false;
        Out.Items.push_back(std::move(Child));
      }
    }
    if (C == ')') {
      Error = "line " + std::to_string(Line) + ": unexpected ')'";
      return false;
    }
    if (C == '|') {
      // Quoted symbol.
      size_t End = Text.find('|', Pos + 1);
      if (End == std::string::npos) {
        Error = "line " + std::to_string(Line) + ": unterminated |symbol|";
        return false;
      }
      Out.IsAtom = true;
      Out.Atom = Text.substr(Pos + 1, End - Pos - 1);
      Pos = End + 1;
      return true;
    }
    // Plain atom.
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char D = Text[Pos];
      if (D == '(' || D == ')' || D == ' ' || D == '\t' || D == '\n' ||
          D == '\r' || D == ';')
        break;
      ++Pos;
    }
    Out.IsAtom = true;
    Out.Atom = Text.substr(Start, Pos - Start);
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
  size_t Line = 1;
};

} // namespace

SExprParseResult la::parseSExprs(const std::string &Text) {
  return Reader(Text).run();
}
