//===- logic/LinearExpr.h - Canonical linear expressions --------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical representation of linear expressions `sum c_i * x_i + b` over
/// hash-consed variables with exact rational coefficients, plus linear atoms
/// `E <= 0`, `E < 0`, `E = 0` in normalised form. This is the interchange
/// format between formulas, the simplex solver and the learned classifiers.
///
//===----------------------------------------------------------------------===//

#ifndef LA_LOGIC_LINEAREXPR_H
#define LA_LOGIC_LINEAREXPR_H

#include "logic/Term.h"

#include <map>
#include <optional>

namespace la {

/// Orders variables deterministically by creation id.
struct TermIdLess {
  bool operator()(const Term *A, const Term *B) const {
    return A->id() < B->id();
  }
};

/// A linear expression with exact rational coefficients.
class LinearExpr {
public:
  LinearExpr() = default;
  explicit LinearExpr(Rational Constant) : Constant(std::move(Constant)) {}

  /// Converts a linear Int term (Vars/Add/Mul/IntConst) to canonical form.
  /// \returns std::nullopt when the term contains Mod or other non-linear
  /// structure (callers lower Mod first).
  static std::optional<LinearExpr> fromTerm(const Term *T);

  const std::map<const Term *, Rational, TermIdLess> &coefficients() const {
    return Coeffs;
  }
  const Rational &constant() const { return Constant; }

  bool isConstant() const { return Coeffs.empty(); }

  Rational coefficient(const Term *Var) const {
    auto It = Coeffs.find(Var);
    return It == Coeffs.end() ? Rational() : It->second;
  }

  /// Adds `Factor * Var` and drops the entry if the coefficient cancels.
  void addVar(const Term *Var, const Rational &Factor);
  void addConstant(const Rational &Value) { Constant += Value; }

  LinearExpr operator+(const LinearExpr &RHS) const;
  LinearExpr operator-(const LinearExpr &RHS) const;
  LinearExpr scaled(const Rational &Factor) const;

  /// Evaluates under a variable assignment; all variables must be bound.
  Rational
  eval(const std::unordered_map<const Term *, Rational> &Assignment) const;

  /// Scales the expression so all coefficients and the constant are integers
  /// with gcd 1 and the leading (lowest-id) coefficient is positive; returns
  /// the positive factor applied. Used to obtain canonical atom keys.
  Rational normalizeIntegral();

  /// Rebuilds a Term; requires a TermManager.
  const Term *toTerm(TermManager &TM) const;

  std::string toString() const;

  bool operator==(const LinearExpr &RHS) const {
    return Constant == RHS.Constant && Coeffs == RHS.Coeffs;
  }

private:
  std::map<const Term *, Rational, TermIdLess> Coeffs;
  Rational Constant;
};

/// Relation of a normalised linear atom against zero.
enum class LinRel { Le, Lt, Eq };

/// A linear atom `Expr REL 0`.
struct LinearAtom {
  LinearExpr Expr;
  LinRel Rel = LinRel::Le;

  /// Classifies a Bool term that is a comparison over linear Int terms.
  /// The result is normalised as `lhs - rhs REL 0`.
  static std::optional<LinearAtom> fromTerm(const Term *T);

  /// The negated atom. Negating Eq is not expressible as a single atom, so
  /// this asserts Rel != Eq (callers expand disequalities beforehand).
  LinearAtom negated() const;

  bool
  holds(const std::unordered_map<const Term *, Rational> &Assignment) const;

  const Term *toTerm(TermManager &TM) const;
  std::string toString() const;
};

} // namespace la

#endif // LA_LOGIC_LINEAREXPR_H
