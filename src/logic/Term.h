//===- logic/Term.h - Hash-consed term DAG ----------------------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The term language shared by the whole system: linear integer arithmetic
/// with boolean structure, unknown predicate applications (for CHCs) and a
/// `mod` operator (for the "beyond Polyhedra" features of the paper, §3.3).
///
/// Terms are immutable, hash-consed and owned by a TermManager; equal terms
/// are pointer-equal. Each term carries a sequential id so containers can
/// iterate deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef LA_LOGIC_TERM_H
#define LA_LOGIC_TERM_H

#include "support/Rational.h"

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace la {

class TermManager;

/// The sort of a term.
enum class Sort { Bool, Int };

/// Structural constructor tags.
enum class TermKind {
  // Arithmetic (sort Int).
  IntConst, ///< Integer constant (value stored as Rational with Den == 1).
  Var,      ///< Named variable (Int or Bool sort).
  Add,      ///< N-ary sum.
  Mul,      ///< Constant * term (kept linear by construction).
  Mod,      ///< t mod k for a positive integer constant k (Euclidean).
  // Atoms (sort Bool).
  Le, ///< lhs <= rhs
  Lt, ///< lhs <  rhs
  Eq, ///< lhs == rhs (Int args)
  // Boolean structure.
  BoolConst,
  Not,
  And,
  Or,
  // CHC-specific.
  PredApp, ///< Application of an unknown predicate symbol to Int terms.
};

/// An immutable node of the term DAG. Create via TermManager only.
class Term {
public:
  TermKind kind() const { return Kind; }
  Sort sort() const { return TheSort; }
  /// Sequential creation index, unique within the owning manager.
  uint32_t id() const { return Id; }

  /// Value of an IntConst, the multiplier of a Mul, or the modulus of a Mod.
  const Rational &value() const { return Value; }
  /// True/false payload of a BoolConst.
  bool boolValue() const { return !Value.isZero(); }
  /// Variable or predicate name.
  const std::string &name() const { return Name; }

  const std::vector<const Term *> &operands() const { return Ops; }
  const Term *operand(size_t I) const { return Ops[I]; }
  size_t numOperands() const { return Ops.size(); }

  bool isIntConst() const { return Kind == TermKind::IntConst; }
  bool isVar() const { return Kind == TermKind::Var; }
  bool isTrue() const { return Kind == TermKind::BoolConst && boolValue(); }
  bool isFalse() const { return Kind == TermKind::BoolConst && !boolValue(); }

  /// Renders the term in SMT-LIB-flavoured prefix syntax.
  std::string toString() const;

private:
  friend class TermManager;
  Term() = default;

  TermKind Kind = TermKind::BoolConst;
  Sort TheSort = Sort::Bool;
  uint32_t Id = 0;
  Rational Value;
  std::string Name;
  std::vector<const Term *> Ops;
};

/// Owner and unique-ing factory for terms.
///
/// All smart constructors perform light normalisation (constant folding,
/// flattening of And/Or/Add, unit laws) so that structurally trivial
/// differences never reach the solvers.
class TermManager {
public:
  TermManager();
  TermManager(const TermManager &) = delete;
  TermManager &operator=(const TermManager &) = delete;

  const Term *mkTrue() const { return TrueTerm; }
  const Term *mkFalse() const { return FalseTerm; }
  const Term *mkBool(bool Value) const { return Value ? TrueTerm : FalseTerm; }
  const Term *mkIntConst(Rational Value);
  const Term *mkIntConst(int64_t Value) { return mkIntConst(Rational(Value)); }

  /// Returns the variable named \p Name, creating it with sort \p S on first
  /// use. Asserts if the name was previously used with a different sort.
  const Term *mkVar(const std::string &Name, Sort S = Sort::Int);
  /// Creates a variable with a fresh, unused name derived from \p Prefix.
  const Term *mkFreshVar(const std::string &Prefix, Sort S = Sort::Int);

  const Term *mkAdd(std::vector<const Term *> Terms);
  const Term *mkAdd(const Term *A, const Term *B) { return mkAdd({A, B}); }
  const Term *mkSub(const Term *A, const Term *B);
  const Term *mkNeg(const Term *A);
  /// Constant multiple of a term (keeps the language linear).
  const Term *mkMul(Rational Factor, const Term *A);
  /// Euclidean remainder by a positive constant modulus.
  const Term *mkMod(const Term *A, const BigInt &Modulus);

  const Term *mkLe(const Term *L, const Term *R);
  const Term *mkLt(const Term *L, const Term *R);
  const Term *mkGe(const Term *L, const Term *R) { return mkLe(R, L); }
  const Term *mkGt(const Term *L, const Term *R) { return mkLt(R, L); }
  const Term *mkEq(const Term *L, const Term *R);
  /// Integer disequality, expanded to (or (< L R) (> L R)).
  const Term *mkNe(const Term *L, const Term *R);

  const Term *mkNot(const Term *A);
  const Term *mkAnd(std::vector<const Term *> Terms);
  const Term *mkAnd(const Term *A, const Term *B) { return mkAnd({A, B}); }
  const Term *mkOr(std::vector<const Term *> Terms);
  const Term *mkOr(const Term *A, const Term *B) { return mkOr({A, B}); }
  const Term *mkImplies(const Term *A, const Term *B) {
    return mkOr(mkNot(A), B);
  }

  const Term *mkPredApp(const std::string &Name,
                        std::vector<const Term *> Args);

  /// Capture-free parallel substitution of variables by terms.
  const Term *substitute(
      const Term *T,
      const std::unordered_map<const Term *, const Term *> &Map);

  /// Deep-copies a term owned by *another* manager into this one, matching
  /// variables by name (and sort) so that imports into a manager that
  /// already interns the same names share its variables. This is what lets
  /// the portfolio engine hand each worker thread a private manager and
  /// still translate the winner's formulas back to the caller's terms.
  const Term *import(const Term *T);

  /// Collects the distinct variables of \p T in first-occurrence order.
  std::vector<const Term *> collectVars(const Term *T);

  /// True if \p T contains any PredApp node.
  static bool containsPredApp(const Term *T);

  size_t numTerms() const { return Terms.size(); }

private:
  const Term *intern(TermKind Kind, Sort S, Rational Value, std::string Name,
                     std::vector<const Term *> Ops);

  struct KeyHash {
    size_t operator()(const Term *T) const;
  };
  struct KeyEq {
    bool operator()(const Term *A, const Term *B) const;
  };

  std::deque<Term> Terms;
  std::unordered_map<const Term *, const Term *, KeyHash, KeyEq> Unique;
  std::unordered_map<std::string, const Term *> VarsByName;
  uint64_t FreshCounter = 0;
  const Term *TrueTerm = nullptr;
  const Term *FalseTerm = nullptr;
};

/// Evaluates \p T under \p Assignment (variables -> rational values).
/// Bool results are encoded as 1/0. Asserts that every variable is bound and
/// that no PredApp occurs.
Rational evalTerm(const Term *T,
                  const std::unordered_map<const Term *, Rational> &Assignment);

/// Convenience: evaluates a Bool-sorted term to a C++ bool.
bool evalFormula(const Term *T,
                 const std::unordered_map<const Term *, Rational> &Assignment);

} // namespace la

#endif // LA_LOGIC_TERM_H
