//===- logic/SExpr.h - S-expression reader ----------------------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small S-expression reader used by the SMT-LIB2 (HORN fragment) parser.
/// Supports atoms, lists, line comments (`;`), and `|...|` quoted symbols.
///
//===----------------------------------------------------------------------===//

#ifndef LA_LOGIC_SEXPR_H
#define LA_LOGIC_SEXPR_H

#include <memory>
#include <string>
#include <vector>

namespace la {

/// A parsed S-expression node: either an atom or a list.
struct SExpr {
  bool IsAtom = false;
  std::string Atom;               ///< Valid when IsAtom.
  std::vector<SExpr> Items;       ///< Valid when !IsAtom.
  size_t Line = 0;                ///< 1-based source line for diagnostics.
  size_t Col = 0;                 ///< 1-based source column for diagnostics.

  bool isAtom(const std::string &Text) const {
    return IsAtom && Atom == Text;
  }
  /// True when this is a list whose first element is the atom \p Head.
  bool isCall(const std::string &Head) const {
    return !IsAtom && !Items.empty() && Items[0].isAtom(Head);
  }
  std::string toString() const;
};

/// Result of parsing a whole file: the top-level expressions or an error.
struct SExprParseResult {
  std::vector<SExpr> TopLevel;
  bool Ok = true;
  std::string Error;  ///< Message in "line N: ..." style when !Ok.
  size_t ErrLine = 0; ///< 1-based error location when !Ok (for callers that
  size_t ErrCol = 0;  ///< render their own located diagnostics).
};

/// Parses the given text into a sequence of top-level S-expressions.
SExprParseResult parseSExprs(const std::string &Text);

} // namespace la

#endif // LA_LOGIC_SEXPR_H
