//===- logic/Term.cpp - Hash-consed term DAG ------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/Term.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace la;

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static const char *kindSymbol(TermKind Kind) {
  switch (Kind) {
  case TermKind::Add:
    return "+";
  case TermKind::Mul:
    return "*";
  case TermKind::Mod:
    return "mod";
  case TermKind::Le:
    return "<=";
  case TermKind::Lt:
    return "<";
  case TermKind::Eq:
    return "=";
  case TermKind::Not:
    return "not";
  case TermKind::And:
    return "and";
  case TermKind::Or:
    return "or";
  default:
    return "?";
  }
}

std::string Term::toString() const {
  switch (Kind) {
  case TermKind::IntConst:
    if (Value.isNegative())
      return "(- " + (-Value).toString() + ")";
    return Value.toString();
  case TermKind::BoolConst:
    return boolValue() ? "true" : "false";
  case TermKind::Var:
    return Name;
  case TermKind::PredApp: {
    if (Ops.empty())
      return Name;
    std::string Out = "(" + Name;
    for (const Term *Op : Ops)
      Out += " " + Op->toString();
    return Out + ")";
  }
  case TermKind::Mul: {
    std::string Factor = Value.isNegative()
                             ? "(- " + (-Value).toString() + ")"
                             : Value.toString();
    return "(* " + Factor + " " + Ops[0]->toString() + ")";
  }
  case TermKind::Mod:
    return "(mod " + Ops[0]->toString() + " " + Value.toString() + ")";
  default: {
    std::string Out = std::string("(") + kindSymbol(Kind);
    for (const Term *Op : Ops)
      Out += " " + Op->toString();
    return Out + ")";
  }
  }
}

//===----------------------------------------------------------------------===//
// Hash consing
//===----------------------------------------------------------------------===//

size_t TermManager::KeyHash::operator()(const Term *T) const {
  size_t Seed = static_cast<size_t>(T->kind()) * 1099511628211ULL;
  Seed ^= T->value().hash() + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
  Seed ^= std::hash<std::string>()(T->name()) + (Seed << 6) + (Seed >> 2);
  for (const Term *Op : T->operands())
    Seed ^= std::hash<const void *>()(Op) + 0x9e3779b97f4a7c15ULL +
            (Seed << 6) + (Seed >> 2);
  return Seed;
}

bool TermManager::KeyEq::operator()(const Term *A, const Term *B) const {
  return A->kind() == B->kind() && A->value() == B->value() &&
         A->name() == B->name() && A->operands() == B->operands();
}

TermManager::TermManager() {
  TrueTerm = intern(TermKind::BoolConst, Sort::Bool, Rational(1), "", {});
  FalseTerm = intern(TermKind::BoolConst, Sort::Bool, Rational(0), "", {});
}

const Term *TermManager::intern(TermKind Kind, Sort S, Rational Value,
                                std::string Name,
                                std::vector<const Term *> Ops) {
  Term Probe;
  Probe.Kind = Kind;
  Probe.TheSort = S;
  Probe.Value = std::move(Value);
  Probe.Name = std::move(Name);
  Probe.Ops = std::move(Ops);
  auto It = Unique.find(&Probe);
  if (It != Unique.end())
    return It->second;
  Terms.push_back(std::move(Probe));
  Term &Stored = Terms.back();
  Stored.Id = static_cast<uint32_t>(Terms.size() - 1);
  Unique.emplace(&Stored, &Stored);
  return &Stored;
}

const Term *TermManager::mkIntConst(Rational Value) {
  assert(Value.isInteger() && "IntConst must hold an integer");
  return intern(TermKind::IntConst, Sort::Int, std::move(Value), "", {});
}

const Term *TermManager::mkVar(const std::string &Name, Sort S) {
  auto It = VarsByName.find(Name);
  if (It != VarsByName.end()) {
    assert(It->second->sort() == S && "variable re-declared at another sort");
    return It->second;
  }
  const Term *V = intern(TermKind::Var, S, Rational(), Name, {});
  VarsByName.emplace(Name, V);
  return V;
}

const Term *TermManager::mkFreshVar(const std::string &Prefix, Sort S) {
  for (;;) {
    std::string Name = Prefix + "!" + std::to_string(FreshCounter++);
    if (!VarsByName.count(Name))
      return mkVar(Name, S);
  }
}

const Term *TermManager::mkAdd(std::vector<const Term *> TermsIn) {
  std::vector<const Term *> Flat;
  Rational ConstSum;
  for (const Term *T : TermsIn) {
    assert(T->sort() == Sort::Int && "Add over non-Int term");
    if (T->kind() == TermKind::IntConst) {
      ConstSum += T->value();
      continue;
    }
    if (T->kind() == TermKind::Add) {
      for (const Term *Op : T->operands()) {
        if (Op->kind() == TermKind::IntConst)
          ConstSum += Op->value();
        else
          Flat.push_back(Op);
      }
      continue;
    }
    Flat.push_back(T);
  }
  if (!ConstSum.isZero())
    Flat.push_back(mkIntConst(ConstSum));
  if (Flat.empty())
    return mkIntConst(0);
  if (Flat.size() == 1)
    return Flat[0];
  return intern(TermKind::Add, Sort::Int, Rational(), "", std::move(Flat));
}

const Term *TermManager::mkNeg(const Term *A) { return mkMul(Rational(-1), A); }

const Term *TermManager::mkSub(const Term *A, const Term *B) {
  return mkAdd(A, mkNeg(B));
}

const Term *TermManager::mkMul(Rational Factor, const Term *A) {
  assert(A->sort() == Sort::Int && "Mul over non-Int term");
  if (Factor.isZero())
    return mkIntConst(0);
  if (Factor == Rational(1))
    return A;
  if (A->kind() == TermKind::IntConst)
    return mkIntConst(Factor * A->value());
  if (A->kind() == TermKind::Mul)
    return mkMul(Factor * A->value(), A->operand(0));
  if (A->kind() == TermKind::Add) {
    std::vector<const Term *> Scaled;
    Scaled.reserve(A->numOperands());
    for (const Term *Op : A->operands())
      Scaled.push_back(mkMul(Factor, Op));
    return mkAdd(std::move(Scaled));
  }
  return intern(TermKind::Mul, Sort::Int, std::move(Factor), "", {A});
}

const Term *TermManager::mkMod(const Term *A, const BigInt &Modulus) {
  assert(Modulus.signum() > 0 && "modulus must be positive");
  if (A->kind() == TermKind::IntConst)
    return mkIntConst(Rational(A->value().numerator().euclideanMod(Modulus)));
  return intern(TermKind::Mod, Sort::Int, Rational(Modulus), "", {A});
}

/// Folds comparisons between constants; returns nullptr when not constant.
static const Term *foldCmp(TermManager &TM, TermKind Kind, const Term *L,
                           const Term *R) {
  if (L->kind() != TermKind::IntConst || R->kind() != TermKind::IntConst)
    return nullptr;
  int C = L->value().compare(R->value());
  switch (Kind) {
  case TermKind::Le:
    return TM.mkBool(C <= 0);
  case TermKind::Lt:
    return TM.mkBool(C < 0);
  case TermKind::Eq:
    return TM.mkBool(C == 0);
  default:
    return nullptr;
  }
}

const Term *TermManager::mkLe(const Term *L, const Term *R) {
  if (const Term *Folded = foldCmp(*this, TermKind::Le, L, R))
    return Folded;
  return intern(TermKind::Le, Sort::Bool, Rational(), "", {L, R});
}

const Term *TermManager::mkLt(const Term *L, const Term *R) {
  if (const Term *Folded = foldCmp(*this, TermKind::Lt, L, R))
    return Folded;
  return intern(TermKind::Lt, Sort::Bool, Rational(), "", {L, R});
}

const Term *TermManager::mkEq(const Term *L, const Term *R) {
  if (L == R)
    return mkTrue();
  if (const Term *Folded = foldCmp(*this, TermKind::Eq, L, R))
    return Folded;
  return intern(TermKind::Eq, Sort::Bool, Rational(), "", {L, R});
}

const Term *TermManager::mkNe(const Term *L, const Term *R) {
  return mkOr(mkLt(L, R), mkLt(R, L));
}

const Term *TermManager::mkNot(const Term *A) {
  assert(A->sort() == Sort::Bool && "Not over non-Bool term");
  if (A->isTrue())
    return mkFalse();
  if (A->isFalse())
    return mkTrue();
  if (A->kind() == TermKind::Not)
    return A->operand(0);
  return intern(TermKind::Not, Sort::Bool, Rational(), "", {A});
}

const Term *TermManager::mkAnd(std::vector<const Term *> TermsIn) {
  std::vector<const Term *> Flat;
  for (const Term *T : TermsIn) {
    assert(T->sort() == Sort::Bool && "And over non-Bool term");
    if (T->isTrue())
      continue;
    if (T->isFalse())
      return mkFalse();
    if (T->kind() == TermKind::And) {
      Flat.insert(Flat.end(), T->operands().begin(), T->operands().end());
      continue;
    }
    Flat.push_back(T);
  }
  if (Flat.empty())
    return mkTrue();
  if (Flat.size() == 1)
    return Flat[0];
  return intern(TermKind::And, Sort::Bool, Rational(), "", std::move(Flat));
}

const Term *TermManager::mkOr(std::vector<const Term *> TermsIn) {
  std::vector<const Term *> Flat;
  for (const Term *T : TermsIn) {
    assert(T->sort() == Sort::Bool && "Or over non-Bool term");
    if (T->isFalse())
      continue;
    if (T->isTrue())
      return mkTrue();
    if (T->kind() == TermKind::Or) {
      Flat.insert(Flat.end(), T->operands().begin(), T->operands().end());
      continue;
    }
    Flat.push_back(T);
  }
  if (Flat.empty())
    return mkFalse();
  if (Flat.size() == 1)
    return Flat[0];
  return intern(TermKind::Or, Sort::Bool, Rational(), "", std::move(Flat));
}

const Term *TermManager::mkPredApp(const std::string &Name,
                                   std::vector<const Term *> Args) {
  for ([[maybe_unused]] const Term *Arg : Args)
    assert(Arg->sort() == Sort::Int && "predicate argument must be Int");
  return intern(TermKind::PredApp, Sort::Bool, Rational(), Name,
                std::move(Args));
}

const Term *TermManager::substitute(
    const Term *T,
    const std::unordered_map<const Term *, const Term *> &Map) {
  if (Map.empty())
    return T;
  std::unordered_map<const Term *, const Term *> Cache;
  // Iterative worklist rewrite to avoid deep recursion on big formulas.
  std::function<const Term *(const Term *)> Rewrite =
      [&](const Term *Node) -> const Term * {
    auto Hit = Cache.find(Node);
    if (Hit != Cache.end())
      return Hit->second;
    const Term *Result = Node;
    if (Node->kind() == TermKind::Var) {
      auto It = Map.find(Node);
      if (It != Map.end())
        Result = It->second;
    } else if (Node->numOperands() != 0) {
      std::vector<const Term *> NewOps;
      NewOps.reserve(Node->numOperands());
      bool Changed = false;
      for (const Term *Op : Node->operands()) {
        const Term *NewOp = Rewrite(Op);
        Changed |= NewOp != Op;
        NewOps.push_back(NewOp);
      }
      if (Changed) {
        switch (Node->kind()) {
        case TermKind::Add:
          Result = mkAdd(std::move(NewOps));
          break;
        case TermKind::Mul:
          Result = mkMul(Node->value(), NewOps[0]);
          break;
        case TermKind::Mod:
          Result = mkMod(NewOps[0], Node->value().numerator());
          break;
        case TermKind::Le:
          Result = mkLe(NewOps[0], NewOps[1]);
          break;
        case TermKind::Lt:
          Result = mkLt(NewOps[0], NewOps[1]);
          break;
        case TermKind::Eq:
          Result = mkEq(NewOps[0], NewOps[1]);
          break;
        case TermKind::Not:
          Result = mkNot(NewOps[0]);
          break;
        case TermKind::And:
          Result = mkAnd(std::move(NewOps));
          break;
        case TermKind::Or:
          Result = mkOr(std::move(NewOps));
          break;
        case TermKind::PredApp:
          Result = mkPredApp(Node->name(), std::move(NewOps));
          break;
        default:
          assert(false && "unexpected composite term kind");
        }
      }
    }
    Cache.emplace(Node, Result);
    return Result;
  };
  return Rewrite(T);
}

const Term *TermManager::import(const Term *T) {
  // Source terms are interned in their own manager, so a memo on source
  // pointers keeps the copy linear in the DAG size.
  std::unordered_map<const Term *, const Term *> Cache;
  std::function<const Term *(const Term *)> Copy =
      [&](const Term *Node) -> const Term * {
    auto Hit = Cache.find(Node);
    if (Hit != Cache.end())
      return Hit->second;
    const Term *Result = nullptr;
    switch (Node->kind()) {
    case TermKind::IntConst:
      Result = mkIntConst(Node->value());
      break;
    case TermKind::BoolConst:
      Result = mkBool(Node->boolValue());
      break;
    case TermKind::Var:
      Result = mkVar(Node->name(), Node->sort());
      break;
    default: {
      std::vector<const Term *> Ops;
      Ops.reserve(Node->numOperands());
      for (const Term *Op : Node->operands())
        Ops.push_back(Copy(Op));
      switch (Node->kind()) {
      case TermKind::Add:
        Result = mkAdd(std::move(Ops));
        break;
      case TermKind::Mul:
        Result = mkMul(Node->value(), Ops[0]);
        break;
      case TermKind::Mod:
        Result = mkMod(Ops[0], Node->value().numerator());
        break;
      case TermKind::Le:
        Result = mkLe(Ops[0], Ops[1]);
        break;
      case TermKind::Lt:
        Result = mkLt(Ops[0], Ops[1]);
        break;
      case TermKind::Eq:
        Result = mkEq(Ops[0], Ops[1]);
        break;
      case TermKind::Not:
        Result = mkNot(Ops[0]);
        break;
      case TermKind::And:
        Result = mkAnd(std::move(Ops));
        break;
      case TermKind::Or:
        Result = mkOr(std::move(Ops));
        break;
      case TermKind::PredApp:
        Result = mkPredApp(Node->name(), std::move(Ops));
        break;
      default:
        assert(false && "unexpected composite term kind");
        Result = mkTrue();
      }
      break;
    }
    }
    Cache.emplace(Node, Result);
    return Result;
  };
  return Copy(T);
}

std::vector<const Term *> TermManager::collectVars(const Term *T) {
  std::vector<const Term *> Result;
  std::unordered_map<const Term *, bool> Seen;
  std::function<void(const Term *)> Visit = [&](const Term *Node) {
    if (Seen.count(Node))
      return;
    Seen.emplace(Node, true);
    if (Node->kind() == TermKind::Var) {
      Result.push_back(Node);
      return;
    }
    for (const Term *Op : Node->operands())
      Visit(Op);
  };
  Visit(T);
  return Result;
}

bool TermManager::containsPredApp(const Term *T) {
  if (T->kind() == TermKind::PredApp)
    return true;
  for (const Term *Op : T->operands())
    if (containsPredApp(Op))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

Rational la::evalTerm(
    const Term *T, const std::unordered_map<const Term *, Rational> &Assignment) {
  switch (T->kind()) {
  case TermKind::IntConst:
  case TermKind::BoolConst:
    return T->value();
  case TermKind::Var: {
    auto It = Assignment.find(T);
    assert(It != Assignment.end() && "unbound variable in evaluation");
    return It->second;
  }
  case TermKind::Add: {
    Rational Sum;
    for (const Term *Op : T->operands())
      Sum += evalTerm(Op, Assignment);
    return Sum;
  }
  case TermKind::Mul:
    return T->value() * evalTerm(T->operand(0), Assignment);
  case TermKind::Mod: {
    Rational V = evalTerm(T->operand(0), Assignment);
    assert(V.isInteger() && "mod of a non-integer value");
    return Rational(V.numerator().euclideanMod(T->value().numerator()));
  }
  case TermKind::Le:
    return Rational(evalTerm(T->operand(0), Assignment) <=
                            evalTerm(T->operand(1), Assignment)
                        ? 1
                        : 0);
  case TermKind::Lt:
    return Rational(evalTerm(T->operand(0), Assignment) <
                            evalTerm(T->operand(1), Assignment)
                        ? 1
                        : 0);
  case TermKind::Eq:
    return Rational(evalTerm(T->operand(0), Assignment) ==
                            evalTerm(T->operand(1), Assignment)
                        ? 1
                        : 0);
  case TermKind::Not:
    return Rational(evalTerm(T->operand(0), Assignment).isZero() ? 1 : 0);
  case TermKind::And: {
    for (const Term *Op : T->operands())
      if (evalTerm(Op, Assignment).isZero())
        return Rational(0);
    return Rational(1);
  }
  case TermKind::Or: {
    for (const Term *Op : T->operands())
      if (!evalTerm(Op, Assignment).isZero())
        return Rational(1);
    return Rational(0);
  }
  case TermKind::PredApp:
    assert(false && "cannot evaluate an unknown predicate application");
    return Rational(0);
  }
  assert(false && "unhandled term kind");
  return Rational(0);
}

bool la::evalFormula(
    const Term *T, const std::unordered_map<const Term *, Rational> &Assignment) {
  assert(T->sort() == Sort::Bool && "evalFormula over non-Bool term");
  return !evalTerm(T, Assignment).isZero();
}
