//===- logic/LinearExpr.cpp - Canonical linear expressions ----------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/LinearExpr.h"

#include <cassert>

using namespace la;

void LinearExpr::addVar(const Term *Var, const Rational &Factor) {
  assert(Var->isVar() && "coefficient on a non-variable");
  if (Factor.isZero())
    return;
  auto [It, Inserted] = Coeffs.emplace(Var, Factor);
  if (Inserted)
    return;
  It->second += Factor;
  if (It->second.isZero())
    Coeffs.erase(It);
}

/// Accumulates `Factor * T` into `Out`; returns false on non-linear input.
static bool accumulate(const Term *T, const Rational &Factor, LinearExpr &Out) {
  switch (T->kind()) {
  case TermKind::IntConst:
    Out.addConstant(Factor * T->value());
    return true;
  case TermKind::Var:
    Out.addVar(T, Factor);
    return true;
  case TermKind::Add:
    for (const Term *Op : T->operands())
      if (!accumulate(Op, Factor, Out))
        return false;
    return true;
  case TermKind::Mul:
    return accumulate(T->operand(0), Factor * T->value(), Out);
  default:
    return false;
  }
}

std::optional<LinearExpr> LinearExpr::fromTerm(const Term *T) {
  assert(T->sort() == Sort::Int && "linearising a non-Int term");
  LinearExpr Result;
  if (!accumulate(T, Rational(1), Result))
    return std::nullopt;
  return Result;
}

LinearExpr LinearExpr::operator+(const LinearExpr &RHS) const {
  LinearExpr Result = *this;
  Result.Constant += RHS.Constant;
  for (const auto &[Var, Coeff] : RHS.Coeffs)
    Result.addVar(Var, Coeff);
  return Result;
}

LinearExpr LinearExpr::operator-(const LinearExpr &RHS) const {
  return *this + RHS.scaled(Rational(-1));
}

LinearExpr LinearExpr::scaled(const Rational &Factor) const {
  LinearExpr Result;
  if (Factor.isZero())
    return Result;
  Result.Constant = Constant * Factor;
  for (const auto &[Var, Coeff] : Coeffs)
    Result.Coeffs.emplace(Var, Coeff * Factor);
  return Result;
}

Rational LinearExpr::eval(
    const std::unordered_map<const Term *, Rational> &Assignment) const {
  Rational Sum = Constant;
  for (const auto &[Var, Coeff] : Coeffs) {
    auto It = Assignment.find(Var);
    assert(It != Assignment.end() && "unbound variable in evaluation");
    Sum += Coeff * It->second;
  }
  return Sum;
}

Rational LinearExpr::normalizeIntegral() {
  // Common denominator.
  BigInt Lcm(1);
  auto FoldDen = [&Lcm](const Rational &R) {
    const BigInt &D = R.denominator();
    Lcm = Lcm / BigInt::gcd(Lcm, D) * D;
  };
  FoldDen(Constant);
  for (const auto &[Var, Coeff] : Coeffs)
    FoldDen(Coeff);
  // Common divisor of the resulting integers.
  BigInt Gcd;
  auto FoldNum = [&](const Rational &R) {
    Rational Scaled = R * Rational(Lcm);
    assert(Scaled.isInteger() && "lcm scaling must clear denominators");
    Gcd = BigInt::gcd(Gcd, Scaled.numerator());
  };
  FoldNum(Constant);
  for (const auto &[Var, Coeff] : Coeffs)
    FoldNum(Coeff);
  if (Gcd.isZero())
    Gcd = BigInt(1);
  // The sign is preserved: flipping it would change Le/Lt atom meaning.
  Rational Factor = Rational(Lcm) / Rational(Gcd);
  Constant *= Factor;
  for (auto &[Var, Coeff] : Coeffs) {
    (void)Var;
    Coeff *= Factor;
  }
  return Factor;
}

const Term *LinearExpr::toTerm(TermManager &TM) const {
  std::vector<const Term *> Parts;
  for (const auto &[Var, Coeff] : Coeffs)
    Parts.push_back(TM.mkMul(Coeff, Var));
  if (!Constant.isZero() || Parts.empty()) {
    assert(Constant.isInteger() && "building an Int term from a fraction");
    Parts.push_back(TM.mkIntConst(Constant));
  }
  return TM.mkAdd(std::move(Parts));
}

std::string LinearExpr::toString() const {
  std::string Out;
  for (const auto &[Var, Coeff] : Coeffs) {
    if (!Out.empty())
      Out += Coeff.isNegative() ? " - " : " + ";
    else if (Coeff.isNegative())
      Out += "-";
    Rational A = Coeff.abs();
    if (A != Rational(1))
      Out += A.toString() + "*";
    Out += Var->name();
  }
  if (Out.empty())
    return Constant.toString();
  if (!Constant.isZero()) {
    Out += Constant.isNegative() ? " - " : " + ";
    Out += Constant.abs().toString();
  }
  return Out;
}

std::optional<LinearAtom> LinearAtom::fromTerm(const Term *T) {
  LinRel Rel;
  switch (T->kind()) {
  case TermKind::Le:
    Rel = LinRel::Le;
    break;
  case TermKind::Lt:
    Rel = LinRel::Lt;
    break;
  case TermKind::Eq:
    Rel = LinRel::Eq;
    break;
  default:
    return std::nullopt;
  }
  std::optional<LinearExpr> L = LinearExpr::fromTerm(T->operand(0));
  std::optional<LinearExpr> R = LinearExpr::fromTerm(T->operand(1));
  if (!L || !R)
    return std::nullopt;
  LinearAtom Atom;
  Atom.Expr = *L - *R;
  Atom.Rel = Rel;
  return Atom;
}

LinearAtom LinearAtom::negated() const {
  assert(Rel != LinRel::Eq && "negate Eq atoms at the formula level");
  LinearAtom Result;
  Result.Expr = Expr.scaled(Rational(-1));
  Result.Rel = Rel == LinRel::Le ? LinRel::Lt : LinRel::Le;
  return Result;
}

bool LinearAtom::holds(
    const std::unordered_map<const Term *, Rational> &Assignment) const {
  Rational V = Expr.eval(Assignment);
  switch (Rel) {
  case LinRel::Le:
    return V.signum() <= 0;
  case LinRel::Lt:
    return V.signum() < 0;
  case LinRel::Eq:
    return V.isZero();
  }
  return false;
}

const Term *LinearAtom::toTerm(TermManager &TM) const {
  // Scale away fractions first so toTerm can build integer constants.
  LinearExpr Canon = Expr;
  Canon.normalizeIntegral();
  const Term *Lhs = Canon.toTerm(TM);
  const Term *Zero = TM.mkIntConst(0);
  switch (Rel) {
  case LinRel::Le:
    return TM.mkLe(Lhs, Zero);
  case LinRel::Lt:
    return TM.mkLt(Lhs, Zero);
  case LinRel::Eq:
    return TM.mkEq(Lhs, Zero);
  }
  return nullptr;
}

std::string LinearAtom::toString() const {
  const char *RelStr = Rel == LinRel::Le ? " <= 0"
                       : Rel == LinRel::Lt ? " < 0"
                                           : " = 0";
  return Expr.toString() + RelStr;
}
